"""Tests for the Figure 3/4 sweep helpers."""

import pytest

from repro.core.experiment import ExperimentConfig, ResultCache, run_experiment
from repro.core.metrics import (
    bandwidth_series,
    best_gain,
    cost_reduction,
    cost_series,
    run_size_sweep,
    throughput_gain,
    utilization_series,
)
from repro.core.report import render_figure3, render_figure4


@pytest.fixture(scope="module")
def mini_sweep(tmp_path_factory):
    """A tiny 2-size x 2-mode sweep on a reduced machine."""
    cache = ResultCache(str(tmp_path_factory.mktemp("sweep")))
    return run_size_sweep(
        "tx",
        sizes=(1024, 32768),
        modes=("none", "full"),
        cache=cache,
        n_connections=4,
        warmup_ms=6,
        measure_ms=8,
        seed=7,
    )


class TestSweep:
    def test_grid_complete(self, mini_sweep):
        assert set(mini_sweep) == {
            (1024, "none"), (1024, "full"),
            (32768, "none"), (32768, "full"),
        }

    def test_bandwidth_series_shape(self, mini_sweep):
        series = bandwidth_series(mini_sweep, (1024, 32768),
                                  modes=("none", "full"))
        assert len(series["none"]) == 2
        assert all(v > 0 for v in series["full"])

    def test_utilization_series(self, mini_sweep):
        series = utilization_series(mini_sweep, (1024, 32768),
                                    modes=("none", "full"))
        assert all(0.0 < u <= 1.0 for u in series["none"])

    def test_cost_series_decreases_with_size(self, mini_sweep):
        series = cost_series(mini_sweep, (1024, 32768),
                             modes=("none", "full"))
        for mode in ("none", "full"):
            assert series[mode][0] > series[mode][1]

    def test_gain_and_reduction_consistency(self, mini_sweep):
        gain = throughput_gain(mini_sweep, 32768, "full")
        reduction = cost_reduction(mini_sweep, 32768, "full")
        assert gain > 0
        assert reduction > 0
        assert best_gain(mini_sweep, (1024, 32768), "full") >= gain or (
            best_gain(mini_sweep, (1024, 32768), "full")
            == throughput_gain(mini_sweep, 1024, "full")
        )

    def test_renderers(self, mini_sweep):
        fig3 = render_figure3(mini_sweep, (1024, 32768), ("none", "full"),
                              "tx")
        fig4 = render_figure4(mini_sweep, (1024, 32768), ("none", "full"),
                              "tx")
        assert "Figure 3" in fig3 and "1024" in fig3
        assert "Figure 4" in fig4 and "GHz/Gbps" in fig4


class TestDeterminism:
    def test_same_config_same_result(self):
        cfg = ExperimentConfig(
            direction="tx", message_size=8192, affinity="full",
            n_connections=2, warmup_ms=4, measure_ms=6, seed=13,
        )
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.throughput_gbps == b.throughput_gbps
        assert a.bin_vector("engine") == b.bin_vector("engine")
        assert a.to_dict() == b.to_dict()
