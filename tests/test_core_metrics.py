"""Tests for the Figure 3/4 sweep helpers."""

import pytest

from repro.core.experiment import ExperimentConfig, ResultCache, run_experiment
from repro.core.metrics import (
    bandwidth_series,
    best_gain,
    cost_reduction,
    cost_series,
    run_size_sweep,
    throughput_gain,
    utilization_series,
)
from repro.core.report import render_figure3, render_figure4


@pytest.fixture(scope="module")
def mini_sweep(tmp_path_factory):
    """A tiny 2-size x 2-mode sweep on a reduced machine."""
    cache = ResultCache(str(tmp_path_factory.mktemp("sweep")))
    return run_size_sweep(
        "tx",
        sizes=(1024, 32768),
        modes=("none", "full"),
        cache=cache,
        n_connections=4,
        warmup_ms=6,
        measure_ms=8,
        seed=7,
    )


class TestSweep:
    def test_grid_complete(self, mini_sweep):
        assert set(mini_sweep) == {
            (1024, "none"), (1024, "full"),
            (32768, "none"), (32768, "full"),
        }

    def test_bandwidth_series_shape(self, mini_sweep):
        series = bandwidth_series(mini_sweep, (1024, 32768),
                                  modes=("none", "full"))
        assert len(series["none"]) == 2
        assert all(v > 0 for v in series["full"])

    def test_utilization_series(self, mini_sweep):
        series = utilization_series(mini_sweep, (1024, 32768),
                                    modes=("none", "full"))
        assert all(0.0 < u <= 1.0 for u in series["none"])

    def test_cost_series_decreases_with_size(self, mini_sweep):
        series = cost_series(mini_sweep, (1024, 32768),
                             modes=("none", "full"))
        for mode in ("none", "full"):
            assert series[mode][0] > series[mode][1]

    def test_gain_and_reduction_consistency(self, mini_sweep):
        gain = throughput_gain(mini_sweep, 32768, "full")
        reduction = cost_reduction(mini_sweep, 32768, "full")
        assert gain > 0
        assert reduction > 0
        assert best_gain(mini_sweep, (1024, 32768), "full") >= gain or (
            best_gain(mini_sweep, (1024, 32768), "full")
            == throughput_gain(mini_sweep, 1024, "full")
        )

    def test_renderers(self, mini_sweep):
        fig3 = render_figure3(mini_sweep, (1024, 32768), ("none", "full"),
                              "tx")
        fig4 = render_figure4(mini_sweep, (1024, 32768), ("none", "full"),
                              "tx")
        assert "Figure 3" in fig3 and "1024" in fig3
        assert "Figure 4" in fig4 and "GHz/Gbps" in fig4


class TestNoneCells:
    """Failed sweep cells (``None`` from a fault-tolerant runner) must
    propagate as holes, not crash the series/gain helpers."""

    @pytest.fixture()
    def holey_sweep(self, mini_sweep):
        sweep = dict(mini_sweep)
        sweep[(32768, "full")] = None  # quarantined cell
        return sweep

    def test_series_propagate_none(self, holey_sweep):
        for helper in (bandwidth_series, utilization_series, cost_series):
            series = helper(holey_sweep, (1024, 32768),
                            modes=("none", "full"))
            assert series["full"][1] is None
            assert series["full"][0] is not None
            assert all(v is not None for v in series["none"])

    def test_gain_none_when_cell_failed(self, holey_sweep):
        assert throughput_gain(holey_sweep, 32768, "full") is None
        assert cost_reduction(holey_sweep, 32768, "full") is None
        # The healthy size still compares.
        assert throughput_gain(holey_sweep, 1024, "full") is not None

    def test_gain_none_when_baseline_failed(self, mini_sweep):
        sweep = dict(mini_sweep)
        sweep[(1024, "none")] = None
        assert throughput_gain(sweep, 1024, "full") is None

    def test_best_gain_skips_failed_sizes(self, holey_sweep):
        gain = best_gain(holey_sweep, (1024, 32768), "full")
        assert gain == throughput_gain(holey_sweep, 1024, "full")

    def test_best_gain_none_when_all_failed(self, mini_sweep):
        sweep = {key: None for key in mini_sweep}
        assert best_gain(sweep, (1024, 32768), "full") is None

    def test_missing_cell_treated_like_none(self, mini_sweep):
        sweep = dict(mini_sweep)
        del sweep[(32768, "full")]
        series = bandwidth_series(sweep, (1024, 32768),
                                  modes=("none", "full"))
        assert series["full"][1] is None

    def test_renderers_survive_holes(self, holey_sweep):
        fig3 = render_figure3(holey_sweep, (1024, 32768),
                              ("none", "full"), "tx")
        fig4 = render_figure4(holey_sweep, (1024, 32768),
                              ("none", "full"), "tx")
        assert "FAIL" in fig3 and "FAIL" in fig4


class TestDeterminism:
    def test_same_config_same_result(self):
        cfg = ExperimentConfig(
            direction="tx", message_size=8192, affinity="full",
            n_connections=2, warmup_ms=4, measure_ms=6, seed=13,
        )
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert a.throughput_gbps == b.throughput_gbps
        assert a.bin_vector("engine") == b.bin_vector("engine")
        assert a.to_dict() == b.to_dict()
