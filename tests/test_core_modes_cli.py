"""Tests for affinity-mode application and the CLI."""

import pytest

from repro.apps.ttcp import TtcpWorkload
from repro.cli import build_parser
from repro.core.modes import AFFINITY_MODES, apply_affinity, pin_plan
from repro.kernel.machine import Machine
from repro.net.params import NetParams
from repro.net.stack import NetworkStack


class TestPinPlan:
    def test_paper_layout(self):
        # 8 connections on 2 CPUs: 1-4 on CPU0, 5-8 on CPU1.
        assert pin_plan(8, 2) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_four_cpus(self):
        assert pin_plan(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven(self):
        assert pin_plan(5, 2) == [0, 0, 0, 1, 1]


class TestApplyAffinity:
    @pytest.fixture
    def system(self):
        machine = Machine(n_cpus=2, seed=1)
        stack = NetworkStack(machine, NetParams(), n_connections=4,
                             mode="tx", message_size=4096)
        workload = TtcpWorkload(machine, stack, 4096)
        tasks = workload.spawn_all()
        return machine, stack, tasks

    def test_none_leaves_defaults(self, system):
        machine, stack, tasks = system
        applied = apply_affinity(machine, stack, tasks, "none")
        assert applied == {"irq": {}, "proc": {}, "controller": None}
        for nic in stack.nics:
            assert machine.ioapic.route(nic.vector) == 0
        for task in tasks:
            assert task.cpus_allowed == 0b11

    def test_irq_distributes_interrupts(self, system):
        machine, stack, tasks = system
        applied = apply_affinity(machine, stack, tasks, "irq")
        routes = [machine.ioapic.route(n.vector) for n in stack.nics]
        assert routes == [0, 0, 1, 1]
        assert len(applied["irq"]) == 4
        for task in tasks:
            assert task.cpus_allowed == 0b11  # processes untouched

    def test_proc_pins_processes_only(self, system):
        machine, stack, tasks = system
        apply_affinity(machine, stack, tasks, "proc")
        assert [t.cpus_allowed for t in tasks] == [1, 1, 2, 2]
        for nic in stack.nics:
            assert machine.ioapic.route(nic.vector) == 0

    def test_full_aligns_process_with_its_nic(self, system):
        machine, stack, tasks = system
        apply_affinity(machine, stack, tasks, "full")
        for i, task in enumerate(tasks):
            nic_cpu = machine.ioapic.route(stack.nics[i].vector)
            assert task.cpus_allowed == 1 << nic_cpu

    def test_unknown_mode_rejected(self, system):
        machine, stack, tasks = system
        with pytest.raises(ValueError):
            apply_affinity(machine, stack, tasks, "sideways")

    def test_mode_list(self):
        assert AFFINITY_MODES == ("none", "proc", "irq", "full")


class TestCliParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.direction == "tx"
        assert args.affinity == "none"
        assert args.size == 65536

    def test_compare_options(self):
        args = build_parser().parse_args(
            ["compare", "--direction", "rx", "--size", "128",
             "--connections", "4", "--cpus", "4"]
        )
        assert (args.direction, args.size) == ("rx", 128)
        assert (args.connections, args.cpus) == (4, 4)

    def test_invalid_affinity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--affinity", "bogus"])

    def test_table_subcommands_exist(self):
        for sub in ("table1", "table3"):
            args = build_parser().parse_args([sub])
            assert callable(args.func)


class TestCliExecution:
    def test_cmd_run_smoke(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro import cli

        rc = cli.main([
            "run", "--affinity", "full", "--size", "16384",
            "--connections", "2", "--warmup-ms", "4", "--measure-ms", "6",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tx-16384-full" in out
        assert "Engine" in out
