"""Tests for the hardened ResultCache and the parallel SweepRunner.

The headline property: a parallel sweep and a serial sweep produce
byte-identical ``ExperimentResult.to_dict()`` payloads for every cell,
which is what makes the cache atomicity/corruption fixes load-bearing.
"""

import json
import multiprocessing
import os

import pytest

from repro.core.experiment import (
    DEFAULT_CACHE,
    ExperimentConfig,
    ExperimentResult,
    ResultCache,
    run_experiment,
)
from repro.core.metrics import run_size_sweep
from repro.core.parallel import SweepRunner, default_jobs


def _tiny(**overrides):
    """A seconds-scale configuration for parallelism tests."""
    base = dict(
        direction="tx",
        message_size=1024,
        affinity="none",
        n_connections=2,
        warmup_ms=1,
        measure_ms=2,
        seed=3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _canon(result):
    return json.dumps(result.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Hardened cache: lazy env, atomic put, corrupt-entry-as-miss
# ---------------------------------------------------------------------------


class TestCacheHardening:
    def test_env_dir_resolved_lazily(self, tmp_path, monkeypatch):
        cache = ResultCache()  # constructed before the env is set
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert cache.directory == str(tmp_path)
        assert DEFAULT_CACHE.directory == str(tmp_path)
        monkeypatch.delenv("REPRO_RESULTS_DIR")
        assert cache.directory == ".repro-results"

    def test_explicit_dir_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", "/nonexistent")
        cache = ResultCache(directory=str(tmp_path))
        assert cache.directory == str(tmp_path)

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        cfg = _tiny()
        bad = cache._path(cfg)
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(bad, "w") as fh:
            fh.write('{"config": {"direction": "tx", trunca')  # torn write
        assert cache.get(cfg) is None
        assert not os.path.exists(bad)

    def test_corrupt_entry_recovered_transparently(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        cfg = _tiny()
        result = run_experiment(cfg, cache=cache)
        # Corrupt the on-disk entry behind a fresh cache's back.
        with open(cache._path(cfg), "w") as fh:
            fh.write("not json at all")
        fresh = ResultCache(directory=str(tmp_path))
        recovered = run_experiment(cfg, cache=fresh)
        assert _canon(recovered) == _canon(result)
        # And the re-run repaired the disk entry.
        with open(cache._path(cfg)) as fh:
            assert json.load(fh)["config"]["direction"] == "tx"

    def test_failed_put_leaves_no_partial_files(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        cfg = _tiny()
        unserializable = ExperimentResult.from_dict(
            {"config": cfg.to_dict(), "oops": object()}
        )
        with pytest.raises(TypeError):
            cache.put(cfg, unserializable)
        assert os.listdir(str(tmp_path)) == []

    def test_clear_sweeps_stale_tempfiles(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        cfg = _tiny()
        result = run_experiment(cfg, cache=cache)
        assert result is not None
        stale = os.path.join(str(tmp_path), ".put-stale.part")
        with open(stale, "w") as fh:
            fh.write("{}")
        cache.clear()
        assert os.listdir(str(tmp_path)) == []


# ---------------------------------------------------------------------------
# Concurrent writers
# ---------------------------------------------------------------------------


def _hammer_put(directory, payload_blob, n_puts):
    """Worker: repeatedly put one entry into a shared directory."""
    payload = json.loads(payload_blob)
    cache = ResultCache(directory=directory)
    cfg = ExperimentConfig(**payload["config"])
    result = ExperimentResult.from_dict(payload)
    for _ in range(n_puts):
        cache.put(cfg, result)


class TestConcurrentPut:
    def test_many_processes_one_directory(self, tmp_path):
        cfg = _tiny()
        result = run_experiment(cfg)
        blob = _canon(result)
        procs = [
            multiprocessing.Process(
                target=_hammer_put, args=(str(tmp_path), blob, 25)
            )
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        # Exactly the one entry, fully-formed JSON, no temp debris.
        names = os.listdir(str(tmp_path))
        assert names == [os.path.basename(ResultCache(
            directory=str(tmp_path))._path(cfg))]
        fresh = ResultCache(directory=str(tmp_path))
        assert _canon(fresh.get(cfg)) == blob


# ---------------------------------------------------------------------------
# SweepRunner: parallel == serial, dedup, cache write-through
# ---------------------------------------------------------------------------


class TestSweepRunner:
    def _grid(self):
        return [
            _tiny(message_size=size, affinity=mode)
            for size in (128, 1024)
            for mode in ("none", "full")
        ]

    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        configs = self._grid()
        serial = [run_experiment(c) for c in configs]
        runner = SweepRunner(
            jobs=2, cache=ResultCache(directory=str(tmp_path))
        )
        parallel = runner.run(configs)
        for s, p in zip(serial, parallel):
            assert _canon(s) == _canon(p)

    def test_serial_fallback_matches_too(self, tmp_path):
        configs = self._grid()[:2]
        expected = [run_experiment(c) for c in configs]
        runner = SweepRunner(
            jobs=1, cache=ResultCache(directory=str(tmp_path))
        )
        got = runner.run(configs)
        for e, g in zip(expected, got):
            assert _canon(e) == _canon(g)

    def test_duplicate_configs_simulated_once(self, tmp_path):
        cfg = _tiny()
        messages = []
        runner = SweepRunner(
            jobs=2,
            cache=ResultCache(directory=str(tmp_path)),
            progress=messages.append,
        )
        results = runner.run([cfg, _tiny(), cfg])
        assert len(results) == 3
        assert _canon(results[0]) == _canon(results[1]) == _canon(results[2])
        assert sum(1 for m in messages if m.startswith("running")) == 1
        assert len(os.listdir(str(tmp_path))) == 1

    def test_cache_hits_skip_the_pool(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        cfg = _tiny()
        seeded = run_experiment(cfg, cache=cache)
        messages = []
        runner = SweepRunner(jobs=2, cache=cache, progress=messages.append)
        (hit,) = runner.run([cfg])
        assert _canon(hit) == _canon(seeded)
        assert any(m.startswith("cached") for m in messages)
        assert not any(m.startswith("running") for m in messages)

    def test_run_size_sweep_parallel_equals_serial(self, tmp_path):
        kw = dict(
            sizes=(1024,),
            modes=("none", "full"),
            n_connections=2,
            warmup_ms=1,
            measure_ms=2,
        )
        serial = run_size_sweep("tx", **kw)
        parallel = run_size_sweep(
            "tx",
            cache=ResultCache(directory=str(tmp_path)),
            jobs=2,
            **kw
        )
        assert serial.keys() == parallel.keys()
        for cell in serial:
            assert _canon(serial[cell]) == _canon(parallel[cell])


# ---------------------------------------------------------------------------
# Fault tolerance: failing/hanging cells don't sink the sweep
# ---------------------------------------------------------------------------


def _bad():
    """A cell that raises inside run_experiment (worker-safe)."""
    return _tiny(message_size=2048,
                 cost_overrides={"no_such_cost": 1})


class TestSweepFaultTolerance:
    def test_raising_cell_keeps_other_results(self, tmp_path):
        runner = SweepRunner(
            jobs=2, cache=ResultCache(directory=str(tmp_path)), retries=0
        )
        good, bad = _tiny(), _bad()
        results = runner.run([good, bad])
        assert results[0] is not None
        assert results[1] is None
        assert not runner.report.ok
        (failure,) = runner.report.failures
        assert failure.kind == "error"
        assert "no_such_cost" in failure.error
        assert failure.label in runner.report.summary()

    def test_retries_then_quarantine_serial(self, tmp_path):
        messages = []
        runner = SweepRunner(
            jobs=1, cache=ResultCache(directory=str(tmp_path)),
            progress=messages.append, retries=2,
        )
        (result,) = runner.run([_bad()])
        assert result is None
        # one initial attempt + two same-seed retries
        assert sum(1 for m in messages if m.startswith("running")) == 3
        assert runner.report.failures[0].attempts == 3
        # a later run on the same runner skips the quarantined cell
        messages.clear()
        (again,) = runner.run([_bad()])
        assert again is None
        assert not any(m.startswith("running") for m in messages)
        assert any(m.startswith("quarantined") for m in messages)
        assert not runner.report.ok

    def test_watchdog_times_out_hung_cell(self, tmp_path):
        hog = _tiny(message_size=128, n_connections=8, measure_ms=10_000)
        runner = SweepRunner(
            jobs=1, cache=ResultCache(directory=str(tmp_path)),
            timeout=0.5, retries=0,
        )
        (result,) = runner.run([hog])
        assert result is None
        (failure,) = runner.report.failures
        assert failure.kind == "timeout"

    def test_parallel_watchdog_keeps_fast_cells(self, tmp_path):
        hog = _tiny(message_size=128, n_connections=8, measure_ms=10_000)
        fast = _tiny()
        runner = SweepRunner(
            jobs=2, cache=ResultCache(directory=str(tmp_path)),
            timeout=1.0, retries=0,
        )
        results = runner.run([fast, hog])
        assert results[0] is not None
        assert results[1] is None
        assert runner.report.failures[0].kind == "timeout"

    def test_failed_cells_render_as_fail(self):
        from repro.core.report import render_figure3, render_figure4

        good = run_experiment(_tiny())
        sweep = {(1024, "none"): good, (1024, "full"): None}
        fig3 = render_figure3(sweep, (1024,), ("none", "full"), "tx")
        fig4 = render_figure4(sweep, (1024,), ("none", "full"), "tx")
        assert "FAIL" in fig3 and "--" in fig3
        assert "FAIL" in fig4


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_garbage_env_warns_then_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS='lots'"):
            assert default_jobs() == (os.cpu_count() or 1)
