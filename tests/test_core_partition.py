"""Tests for the workload-partition analysis."""

import pytest

from repro.apps.webserve import WebServerWorkload
from repro.core.experiment import ExperimentConfig
from repro.core.modes import apply_affinity
from repro.core.partition import (
    Partition,
    partition_cycles,
    projected_gain,
)
from repro.kernel.machine import Machine
from repro.net.params import NetParams
from repro.net.stack import NetworkStack

MS = 2_000_000


class TestProjectionMath:
    def test_full_fast_path(self):
        p = Partition(1.0, 0.0, 0.0, 0, 100)
        # 20% cheaper fast path -> 25% more throughput.
        assert projected_gain(p, 0.20) == pytest.approx(0.25)

    def test_no_fast_path_no_gain(self):
        p = Partition(0.0, 0.3, 0.7, 0, 100)
        assert projected_gain(p, 0.5) == pytest.approx(0.0)

    def test_partial_share(self):
        p = Partition(0.5, 0.1, 0.4, 0, 100)
        gain = projected_gain(p, 0.2)
        assert 0.0 < gain < 0.2


class TestTtcpPartition:
    def test_bulk_workload_is_pure_fast_path(self, tx_pair):
        none, _ = tx_pair
        partition = partition_cycles(none)
        assert partition.fast_path > 0.99
        assert partition.setup == 0.0
        assert partition.application == 0.0


class TestWebPartition:
    @pytest.fixture(scope="class")
    def web_result(self):
        machine = Machine(n_cpus=2, seed=12)
        stack = NetworkStack(machine, NetParams(), n_connections=4,
                             mode="web", message_size=16384)
        workload = WebServerWorkload(machine, stack, 16384,
                                     app_instructions=60_000)
        tasks = workload.spawn_all()
        apply_affinity(machine, stack, tasks, "none")
        machine.start()
        stack.start_peers()
        machine.run_for(8 * MS)
        machine.reset_measurement()
        machine.run_for(12 * MS)
        from repro.core.experiment import ExperimentResult

        return ExperimentResult.from_machine(
            ExperimentConfig(direction="tx", message_size=16384),
            machine, stack, workload,
        )

    def test_three_components_present(self, web_result):
        partition = partition_cycles(web_result)
        assert partition.fast_path > 0.5
        assert partition.setup > 0.0
        assert partition.application > 0.0
        total = sum(partition.shares().values())
        assert total == pytest.approx(1.0)
