"""Tests for multi-seed replication."""

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.repeat import Summary, gain_statistics, replicate


class TestSummary:
    def test_single_value(self):
        s = Summary([4.0])
        assert s.mean == 4.0 and s.stdev == 0.0

    def test_statistics(self):
        s = Summary([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.stdev == pytest.approx(1.0)
        assert (s.minimum, s.maximum) == (1.0, 3.0)
        assert s.cv == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary([])


SMALL = dict(n_connections=4, warmup_ms=6, measure_ms=8)


class TestReplicate:
    def test_throughput_stable_across_seeds(self):
        config = ExperimentConfig(direction="tx", message_size=16384,
                                  affinity="full", **SMALL)
        summary = replicate(config, seeds=(3, 9))
        assert summary.mean > 0.2
        # Seed noise should be modest in a steady-state window.
        assert summary.cv < 0.2

    def test_metric_selection(self):
        config = ExperimentConfig(direction="tx", message_size=16384,
                                  affinity="full", **SMALL)
        summary = replicate(config, seeds=(3,), metric="cost_ghz_per_gbps")
        assert summary.mean > 0.3


class TestGainStatistics:
    def test_affinity_gain_positive_for_every_seed(self):
        summary = gain_statistics(
            "tx", 65536, "full", seeds=(3, 9), **SMALL
        )
        assert summary.minimum > 0.0
        assert summary.mean > 0.03
