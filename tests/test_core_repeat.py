"""Tests for multi-seed replication."""

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.repeat import Summary, gain_statistics, replicate


class TestSummary:
    def test_single_value(self):
        s = Summary([4.0])
        assert s.mean == 4.0 and s.stdev == 0.0

    def test_statistics(self):
        s = Summary([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.stdev == pytest.approx(1.0)
        assert (s.minimum, s.maximum) == (1.0, 3.0)
        assert s.cv == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary([])


SMALL = dict(n_connections=4, warmup_ms=6, measure_ms=8)


class TestReplicate:
    def test_throughput_stable_across_seeds(self):
        config = ExperimentConfig(direction="tx", message_size=16384,
                                  affinity="full", **SMALL)
        summary = replicate(config, seeds=(3, 9))
        assert summary.mean > 0.2
        # Seed noise should be modest in a steady-state window.
        assert summary.cv < 0.2

    def test_metric_selection(self):
        config = ExperimentConfig(direction="tx", message_size=16384,
                                  affinity="full", **SMALL)
        summary = replicate(config, seeds=(3,), metric="cost_ghz_per_gbps")
        assert summary.mean > 0.3


class TestGainStatistics:
    def test_affinity_gain_positive_for_every_seed(self):
        summary = gain_statistics(
            "tx", 65536, "full", seeds=(3, 9), **SMALL
        )
        assert summary.minimum > 0.0
        assert summary.mean > 0.03


class _FakeResult:
    def __init__(self, config):
        # Deterministic per-cell metric so gains are checkable: the
        # affinity modes get distinct throughputs per seed.
        bump = {"none": 0.0, "full": 1.0}.get(config.affinity, 0.5)
        self.throughput_gbps = 1.0 + 0.1 * config.seed + bump
        self.cost_ghz_per_gbps = 1.0


class TestDuplicateSeedDedupe:
    """Regression: duplicated (seed, affinity) cells used to collapse in
    ``dict(zip(pairs, results))`` while the Summary still counted the
    duplicated seeds twice."""

    @pytest.fixture
    def fake_runs(self, monkeypatch):
        calls = []

        def fake_run_experiment(config, cache=None, progress=None):
            calls.append((config.seed, config.affinity))
            return _FakeResult(config)

        monkeypatch.setattr(
            "repro.core.repeat.run_experiment", fake_run_experiment
        )
        return calls

    def test_replicate_collapses_duplicate_seeds(self, fake_runs):
        config = ExperimentConfig(direction="tx", message_size=1024,
                                  affinity="full", **SMALL)
        with pytest.warns(RuntimeWarning, match="duplicate sweep cells"):
            summary = replicate(config, seeds=(3, 3, 5))
        # The duplicate seed is neither re-run nor double-counted.
        assert len(fake_runs) == 2
        assert len(summary.values) == 2

    def test_replicate_unique_seeds_do_not_warn(self, fake_runs, recwarn):
        config = ExperimentConfig(direction="tx", message_size=1024,
                                  affinity="full", **SMALL)
        summary = replicate(config, seeds=(3, 5))
        assert len(summary.values) == 2
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]

    def test_gain_statistics_collapses_duplicate_seeds(self, fake_runs):
        with pytest.warns(RuntimeWarning, match="duplicate sweep cells"):
            summary = gain_statistics(
                "tx", 1024, "full", seeds=(3, 3, 9), **SMALL
            )
        # 2 unique seeds x 2 modes, each run exactly once.
        assert len(fake_runs) == 4
        assert len(summary.values) == 2
        expected = [
            _FakeResult(ExperimentConfig(
                direction="tx", message_size=1024, affinity="full",
                seed=s, **SMALL)).throughput_gbps
            / _FakeResult(ExperimentConfig(
                direction="tx", message_size=1024, affinity="none",
                seed=s, **SMALL)).throughput_gbps
            - 1.0
            for s in (3, 9)
        ]
        assert summary.values == pytest.approx(expected)

    def test_gain_statistics_mode_equal_to_baseline(self, fake_runs):
        # mode == baseline duplicates every pair; the gain is honestly
        # zero and each cell still runs only once.
        with pytest.warns(RuntimeWarning, match="duplicate sweep cells"):
            summary = gain_statistics(
                "tx", 1024, "none", baseline="none", seeds=(3,), **SMALL
            )
        assert len(fake_runs) == 1
        assert summary.values == [0.0]
