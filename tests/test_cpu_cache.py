"""Unit tests for the set-associative cache model."""

import pytest

from repro.cpu.cache import SetAssocCache
from repro.cpu.params import CacheGeometry


def make_cache(size=1024, ways=4, line=64):
    return SetAssocCache(CacheGeometry(size, ways, line=line, name="T"))


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert c.access(5) is False
        assert c.access(5) is True
        assert c.misses == 1 and c.hits == 1

    def test_probe_does_not_fill(self):
        c = make_cache()
        assert c.probe(9) is False
        assert c.access(9) is False  # still a miss: probe did not allocate

    def test_fill_inserts_silently(self):
        c = make_cache()
        c.fill(3)
        assert c.access(3) is True
        assert c.misses == 0

    def test_invalidate(self):
        c = make_cache()
        c.access(7)
        c.invalidate(7)
        assert c.probe(7) is False
        c.invalidate(7)  # idempotent

    def test_flush(self):
        c = make_cache()
        for line in range(8):
            c.access(line)
        c.flush()
        assert c.resident_lines() == []


class TestReplacement:
    def test_lru_eviction_within_set(self):
        # 4 sets, 4 ways: lines k, k+4, k+8... map to set k%4.
        c = make_cache(size=1024, ways=4)
        n_sets = 1024 // (64 * 4)
        assert n_sets == 4
        same_set = [0, 4, 8, 12, 16]  # five lines, one set: evicts LRU
        for line in same_set[:4]:
            c.access(line)
        c.access(0)  # refresh 0 to MRU; LRU is now 4
        c.access(same_set[4])  # evicts 4
        assert c.probe(0) is True
        assert c.probe(4) is False
        assert c.probe(8) is True

    def test_capacity_bounded(self):
        c = make_cache(size=1024, ways=4)
        for line in range(1000):
            c.access(line)
        assert len(c.resident_lines()) <= 16
        assert c.occupancy() == 1.0

    def test_working_set_within_capacity_all_hits(self):
        c = make_cache(size=1024, ways=4)
        lines = list(range(16))
        for line in lines:
            c.access(line)
        hits_before = c.hits
        for _ in range(3):
            for line in lines:
                assert c.access(line) is True
        assert c.hits == hits_before + 48


class TestValidation:
    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetAssocCache(CacheGeometry(192 * 64, 1, name="bad"))

    def test_geometry_divisibility_checked(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 3, name="bad")
