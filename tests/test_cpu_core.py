"""Unit tests for the CPU charge path."""

import pytest

from repro.cpu.events import (
    BRANCHES,
    CYCLES,
    DTLB_WALKS,
    INSTRUCTIONS,
    ITLB_WALKS,
    LLC_MISSES,
    MACHINE_CLEARS,
    TC_MISSES,
)
from repro.mem.layout import CACHE_LINE


class TestChargeBasics:
    def test_retire_width_floor(self, rig):
        cycles = rig.cpus[0].charge(rig.fn, 30)
        # 30 instructions at width 3 = 10 cycles plus fetch penalties;
        # with no data touches the only extras are TC/ITLB cold costs.
        assert cycles >= 10

    def test_cycles_advance_clock_and_busy(self, rig):
        cpu = rig.cpus[0]
        cycles = cpu.charge(rig.fn, 300)
        assert cpu.now == cycles
        assert cpu.busy_cycles == cycles

    def test_warm_charge_is_cheaper(self, rig):
        cpu = rig.cpus[0]
        obj = rig.space.alloc("data", CACHE_LINE * 8)
        cold = cpu.charge(rig.fn, 30, reads=[(obj.addr, obj.size)])
        warm = cpu.charge(rig.fn, 30, reads=[(obj.addr, obj.size)])
        assert warm < cold

    def test_llc_miss_costs_dominate_cold_reads(self, rig):
        cpu = rig.cpus[0]
        obj = rig.space.alloc("data", CACHE_LINE * 4)
        cycles = cpu.charge(rig.fn, 3, reads=[(obj.addr, obj.size)])
        assert cycles >= 4 * rig.costs.llc_miss

    def test_counts_recorded_in_totals(self, rig):
        cpu = rig.cpus[0]
        obj = rig.space.alloc("data", CACHE_LINE * 2)
        cpu.charge(rig.fn, 60, writes=[(obj.addr, obj.size)])
        totals = cpu.totals
        assert totals[INSTRUCTIONS] == 60
        assert totals[LLC_MISSES] == 2
        assert totals[CYCLES] > 0
        assert totals[DTLB_WALKS] >= 1

    def test_instruction_fetch_counts_tc_and_itlb(self, rig):
        cpu = rig.cpus[0]
        cpu.charge(rig.fn, 500)
        assert cpu.totals[TC_MISSES] > 0
        assert cpu.totals[ITLB_WALKS] == 1
        tc_before = cpu.totals[TC_MISSES]
        cpu.charge(rig.fn, 500)
        assert cpu.totals[TC_MISSES] == tc_before  # code now resident

    def test_branch_override_used_verbatim(self, rig):
        cpu = rig.cpus[0]
        cpu.charge(rig.fn, 100, branches=37, mispredicts=5)
        assert cpu.totals[BRANCHES] == 37
        assert cpu.totals[3] == 5

    def test_stall_per_call(self, rig):
        syscall = rig.functions.register(
            "sys_test", "interface", stall_per_call=1000
        )
        base = rig.cpus[0].charge(rig.fn, 30)
        stalled = rig.cpus[0].charge(syscall, 30)
        assert stalled >= base + 1000 - rig.costs.tc_miss * 10

    def test_stall_per_instr_raises_cpi(self, rig):
        slow = rig.functions.register(
            "slow_fn", "engine", stall_per_instr=2.0, branch_frac=0.0
        )
        cpu = rig.cpus[0]
        cpu.charge(slow, 1)  # warm code
        cycles = cpu.charge(slow, 900)
        assert cycles >= 900 * 2


class TestMachineClear:
    def test_clear_charges_flush_and_counts(self, rig):
        cpu = rig.cpus[0]
        cycles = cpu.machine_clear(rig.fn, counted=40)
        assert cycles == rig.costs.machine_clear
        assert cpu.totals[MACHINE_CLEARS] == 40
        assert cpu.busy_cycles == cycles

    def test_clear_without_flush(self, rig):
        cpu = rig.cpus[0]
        assert cpu.machine_clear(rig.fn, counted=7, flush=False) == 0
        assert cpu.totals[MACHINE_CLEARS] == 7
        assert cpu.busy_cycles == 0


class TestIdleAndUtilization:
    def test_idle_advances_clock_not_busy(self, rig):
        cpu = rig.cpus[0]
        cpu.advance_idle(500)
        assert cpu.now == 500
        assert cpu.busy_cycles == 0
        assert cpu.utilization() == 0.0

    def test_utilization_mixed(self, rig):
        cpu = rig.cpus[0]
        busy = cpu.charge(rig.fn, 300)
        cpu.advance_idle(busy)  # half idle
        assert cpu.utilization() == pytest.approx(0.5)

    def test_utilization_explicit_denominator(self, rig):
        cpu = rig.cpus[0]
        cpu.charge(rig.fn, 300)
        assert cpu.utilization(total_cycles=cpu.busy_cycles * 4) == pytest.approx(0.25)


class TestAccountingIntegration:
    def test_sink_receives_per_function_rows(self, rig):
        other = rig.functions.register("other_fn", "driver")
        rig.cpus[0].charge(rig.fn, 100)
        rig.cpus[1].charge(other, 50)
        per_fn = rig.accounting.per_function()
        assert per_fn["test_fn"][1][INSTRUCTIONS] == 100
        assert per_fn["other_fn"][1][INSTRUCTIONS] == 50
        per_cpu0 = rig.accounting.per_function(cpu_index=0)
        assert "other_fn" not in per_cpu0

    def test_per_bin_aggregation(self, rig):
        other = rig.functions.register("drv_fn", "driver")
        rig.cpus[0].charge(rig.fn, 100)
        rig.cpus[0].charge(other, 50)
        bins = rig.accounting.per_bin()
        assert bins["engine"][INSTRUCTIONS] == 100
        assert bins["driver"][INSTRUCTIONS] == 50

    def test_disabled_accounting_drops_records(self, rig):
        rig.accounting.enabled = False
        rig.cpus[0].charge(rig.fn, 100)
        rig.accounting.enabled = True
        assert rig.accounting.per_function() == {}
