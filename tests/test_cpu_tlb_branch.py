"""Unit tests for the TLB and branch-predictor models."""

from repro.cpu.branch import COLD_RATE, WARMUP_INVOCATIONS, BranchPredictor
from repro.cpu.params import TlbGeometry
from repro.cpu.tlb import Tlb
from repro.mem.layout import PAGE_SIZE


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(TlbGeometry(4, "T"))
        assert tlb.access(1) is False
        assert tlb.access(1) is True
        assert tlb.walks == 1 and tlb.hits == 1

    def test_lru_eviction(self):
        tlb = Tlb(TlbGeometry(2, "T"))
        tlb.access(1)
        tlb.access(2)
        tlb.access(1)  # 2 becomes LRU
        tlb.access(3)  # evicts 2
        assert tlb.resident_pages() == [3, 1]

    def test_access_range_counts_pages(self):
        tlb = Tlb(TlbGeometry(8, "T"))
        walks = tlb.access_range(0, PAGE_SIZE * 2 + 1)
        assert walks == 3
        assert tlb.access_range(0, PAGE_SIZE) == 0  # warm now

    def test_access_range_empty(self):
        tlb = Tlb(TlbGeometry(8, "T"))
        assert tlb.access_range(100, 0) == 0

    def test_flush(self):
        tlb = Tlb(TlbGeometry(4, "T"))
        tlb.access(1)
        tlb.flush()
        assert tlb.access(1) is False


class TestBranchPredictor:
    def test_deterministic(self):
        a = BranchPredictor()
        b = BranchPredictor()
        seq_a = [a.predict("f", 100, 0.02) for _ in range(20)]
        seq_b = [b.predict("f", 100, 0.02) for _ in range(20)]
        assert seq_a == seq_b

    def test_long_run_rate_matches_base(self):
        bp = BranchPredictor()
        total_branches = 0
        total_mispredicts = 0
        for _ in range(2000):
            total_branches += 100
            total_mispredicts += bp.predict("f", 100, 0.02)
        rate = total_mispredicts / total_branches
        # Cold surcharge washes out over a long run.
        assert 0.019 < rate < 0.023

    def test_cold_start_surcharge(self):
        bp = BranchPredictor()
        cold = bp.predict("g", 1000, 0.01)
        for _ in range(WARMUP_INVOCATIONS):
            bp.predict("g", 1000, 0.01)
        warm = bp.predict("g", 1000, 0.01)
        assert cold > warm
        assert cold <= int(1000 * (0.01 + COLD_RATE)) + 1

    def test_zero_branches(self):
        bp = BranchPredictor()
        assert bp.predict("f", 0, 0.5) == 0

    def test_capacity_eviction_recreates_cold(self):
        bp = BranchPredictor(capacity=2)
        bp.predict("a", 10, 0.0)
        bp.predict("b", 10, 0.0)
        bp.predict("c", 10, 0.0)  # evicts a
        assert bp.warmth("a") == 0
        assert bp.warmth("c") == 1

    def test_rate_clamped_to_branch_count(self):
        bp = BranchPredictor()
        assert bp.predict("f", 5, 1.0) <= 5

    def test_forget(self):
        bp = BranchPredictor()
        bp.predict("f", 10, 0.0)
        bp.forget("f")
        assert bp.warmth("f") == 0
