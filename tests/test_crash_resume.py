"""Integration: SIGKILL a live study subprocess, resume, byte-compare.

The run-store acceptance property end to end: a scale sweep and a
diagnosis killed mid-run (-9, no chance to clean up) must resume from
their journals, re-executing only the cells that never made it to
disk, and produce final reports byte-identical to an uninterrupted
run of the same parameters.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCALE_ARGS = [
    "scale", "--cpus", "2", "4", "--sizes", "4096", "16384",
    "--modes", "rss", "--queues", "2", "--connections", "4",
    "--warmup-ms", "1", "--measure-ms", "2", "--jobs", "1",
    "--no-cache",
]
SCALE_CELLS = 4

DIAG_ARGS = [
    "diagnose", "--direction", "rx", "--modes", "none",
    "--knobs", "copy-engine", "--steps", "1", "--size", "16384",
    "--connections", "4", "--cpus", "2", "--warmup-ms", "1",
    "--measure-ms", "2", "--jobs", "1", "--no-cache",
]


def _env(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["REPRO_RUNS_DIR"] = str(tmp_path / "runs")
    env["REPRO_RESULTS_DIR"] = str(tmp_path / "cache")
    return env


def _cli(args, env, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli"] + args,
        env=env, capture_output=True, text=True, timeout=300,
        **kwargs
    )


def _count_cells(journal_path):
    try:
        with open(journal_path, "rb") as fh:
            return fh.read().count(b'"type":"cell"')
    except OSError:
        return 0


def _spawn_and_signal(args, env, journal_path, min_cells, signum):
    """Start a study subprocess, wait for ``min_cells`` journal
    records, deliver ``signum``; returns (journaled_at_kill, rc)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli"] + args,
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 240
    while time.monotonic() < deadline:
        if _count_cells(journal_path) >= min_cells:
            break
        if proc.poll() is not None:
            break  # finished before we could interrupt: handled below
        time.sleep(0.05)
    try:
        proc.send_signal(signum)
    except ProcessLookupError:
        pass
    rc = proc.wait(timeout=120)
    # Count *after* the kill landed: the race between "saw N cells"
    # and "signal delivered" means more may have been journaled.
    return _count_cells(journal_path), rc


def _manifest(tmp_path, run_id):
    path = tmp_path / "runs" / run_id / "manifest.json"
    return json.loads(path.read_text())


class TestScaleCrashResume:
    def test_sigkill_resume_byte_identical(self, tmp_path):
        env = _env(tmp_path)
        journal = tmp_path / "runs" / "crash" / "journal.jsonl"
        journaled, rc = _spawn_and_signal(
            SCALE_ARGS + ["--run-id", "crash"], env, str(journal),
            min_cells=2, signum=signal.SIGKILL,
        )
        assert journaled >= 1, "nothing journaled before the kill"

        resume = _cli(["runs", "resume", "crash"], env)
        assert resume.returncode == 0, resume.stderr

        baseline = _cli(SCALE_ARGS + ["--run-id", "base"], env)
        assert baseline.returncode == 0, baseline.stderr

        crash_report = (tmp_path / "runs" / "crash" / "report.txt")
        base_report = (tmp_path / "runs" / "base" / "report.txt")
        assert crash_report.read_bytes() == base_report.read_bytes()

        # Already-journaled cells were replayed, never re-executed.
        manifest = _manifest(tmp_path, "crash")
        assert manifest["status"] == "completed"
        resumed_session = manifest["sessions"][-1]
        assert resumed_session["replayed"] == journaled
        assert resumed_session["executed"] == SCALE_CELLS - journaled

    def test_sigterm_checkpoints_gracefully(self, tmp_path):
        env = _env(tmp_path)
        journal = tmp_path / "runs" / "t" / "journal.jsonl"
        journaled, rc = _spawn_and_signal(
            SCALE_ARGS + ["--run-id", "t"], env, str(journal),
            min_cells=1, signum=signal.SIGTERM,
        )
        if journaled >= SCALE_CELLS and rc == 0:
            pytest.skip("sweep finished before SIGTERM landed")
        assert rc == 128 + signal.SIGTERM
        assert _manifest(tmp_path, "t")["status"] == "interrupted"

        resume = _cli(["runs", "resume", "t"], env)
        assert resume.returncode == 0, resume.stderr
        assert _manifest(tmp_path, "t")["status"] == "completed"
        assert (tmp_path / "runs" / "t" / "report.txt").exists()


class TestDiagnoseCrashResume:
    def test_sigkill_resume_byte_identical(self, tmp_path):
        env = _env(tmp_path)
        journal = tmp_path / "runs" / "crash" / "journal.jsonl"
        out_json = str(tmp_path / "c.json")
        journaled, rc = _spawn_and_signal(
            DIAG_ARGS + ["--run-id", "crash", "--json", out_json],
            env, str(journal), min_cells=1, signum=signal.SIGKILL,
        )
        assert journaled >= 1, "nothing journaled before the kill"

        resume = _cli(["runs", "resume", "crash"], env)
        assert resume.returncode == 0, resume.stderr

        baseline = _cli(
            DIAG_ARGS + ["--run-id", "base", "--json",
                         str(tmp_path / "b.json")],
            env,
        )
        assert baseline.returncode == 0, baseline.stderr

        crash = tmp_path / "runs" / "crash" / "diagnosis.json"
        base = tmp_path / "runs" / "base" / "diagnosis.json"
        assert crash.read_bytes() == base.read_bytes()

        manifest = _manifest(tmp_path, "crash")
        assert manifest["status"] == "completed"
        total = sum(
            s["executed"] + s["replayed"] for s in manifest["sessions"]
        )
        resumed_session = manifest["sessions"][-1]
        assert resumed_session["replayed"] >= journaled
        # Resume re-executed only what the kill lost.
        assert resumed_session["executed"] < total
