"""Saturation-point bottleneck diagnosis: search, perturb, rank, render."""

import json

import pytest

from repro.cli import main
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.cpu.params import CpuParams, cpu_params_from_overrides
from repro.diagnose import (
    PERTURB_SPECS,
    SaturationSearch,
    find_saturation,
    render_diagnosis,
    resolve_knobs,
    run_diagnosis,
)
from repro.net.params import NetParams

#: A cheap cell every expensive test here shares (1+3ms windows).
SMALL = dict(
    message_size=8192, n_connections=2, warmup_ms=1, measure_ms=3, seed=7,
)


class TestConfigPlumbing:
    def test_defaults_stay_out_of_cache_keys(self):
        # Golden SHAs depend on to_dict(): the new fields must vanish
        # at their defaults so pre-diagnosis cache keys are unchanged.
        d = ExperimentConfig(direction="rx").to_dict()
        assert "net_overrides" not in d
        assert "cpu_overrides" not in d
        assert "offered_gbps" not in d

    def test_round_trips_through_to_dict(self):
        config = ExperimentConfig(
            direction="rx",
            offered_gbps=1.5,
            net_overrides={"copy_cost_scale": 1.25},
            cpu_overrides={"l2_size": 131072},
            **SMALL
        )
        again = ExperimentConfig(**config.to_dict())
        assert again.to_dict() == config.to_dict()

    def test_offered_gbps_must_be_positive(self):
        with pytest.raises(ValueError):
            ExperimentConfig(direction="rx", offered_gbps=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(direction="rx", offered_gbps=-1.0)

    def test_offered_gbps_requires_ttcp(self):
        with pytest.raises(ValueError):
            ExperimentConfig(
                direction="rx", workload="webserve", offered_gbps=1.0
            )

    def test_label_carries_perturbation_and_load(self):
        config = ExperimentConfig(
            direction="rx",
            offered_gbps=1.5,
            net_overrides={"copy_cost_scale": 1.25},
            **SMALL
        )
        assert config.label().endswith("+pert+load1.5")


class TestOverrides:
    def test_cpu_overrides_resize_geometry(self):
        base = CpuParams()
        params = cpu_params_from_overrides(
            {"l2_size": base.l2.size // 2, "dtlb_entries": 32}
        )
        assert params.l2.size == base.l2.size // 2
        assert params.l2.ways == base.l2.ways
        assert params.dtlb.entries == 32
        assert params.l1.size == base.l1.size

    def test_cpu_overrides_reject_unknown_keys(self):
        with pytest.raises(ValueError):
            cpu_params_from_overrides({"l9_size": 1024})

    def test_net_cost_scales_reject_discounts(self):
        with pytest.raises(ValueError):
            NetParams(copy_cost_scale=0.5)
        with pytest.raises(ValueError):
            NetParams(lock_hold_scale=0.99)


class TestPacing:
    def test_rx_pacing_tracks_offered_load(self):
        closed = run_experiment(ExperimentConfig(direction="rx", **SMALL))
        offered = round(closed.throughput_gbps * 0.5, 4)
        paced = run_experiment(
            ExperimentConfig(direction="rx", offered_gbps=offered, **SMALL)
        )
        # Peer-side pacing is cycle-accurate: delivered == offered
        # within a few percent even on a 3ms window.
        assert paced.throughput_gbps == pytest.approx(offered, rel=0.05)

    def test_tx_pacing_bounds_offered_load(self):
        closed = run_experiment(ExperimentConfig(direction="tx", **SMALL))
        offered = round(closed.throughput_gbps * 0.5, 4)
        paced = run_experiment(
            ExperimentConfig(direction="tx", offered_gbps=offered, **SMALL)
        )
        # Task-side pacing is tick-quantized (1ms kernel timers) with
        # work-conserving catch-up, so short windows can overshoot --
        # but it must clearly throttle below the closed-loop rate.
        assert paced.throughput_gbps < closed.throughput_gbps
        assert 0.7 * offered < paced.throughput_gbps < 1.6 * offered


class TestSaturationSearch:
    def test_rejects_paced_base_config(self):
        with pytest.raises(ValueError):
            SaturationSearch(
                ExperimentConfig(direction="rx", offered_gbps=1.0, **SMALL)
            )

    def test_failed_ceiling_probe_fails_the_search(self):
        search = SaturationSearch(
            ExperimentConfig(direction="rx", **SMALL), steps=3
        )
        search.observe(None)  # quarantined ceiling cell
        assert search.done and search.failed
        summary = search.summary()
        assert summary["failed"] is True
        assert summary["closed_loop_gbps"] is None
        assert summary["probes"] == []

    def test_find_saturation_is_deterministic_and_sane(self):
        config = ExperimentConfig(direction="rx", **SMALL)
        first = find_saturation(config, steps=3)
        second = find_saturation(config, steps=3)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["failed"] is False
        assert first["closed_loop_gbps"] > 0
        assert len(first["probes"]) == 3
        offered = first["saturation_offered_gbps"]
        if offered is not None:
            assert offered <= first["closed_loop_gbps"] * 1.25
            assert first["saturation_gbps"] > 0


class TestPerturbRegistry:
    def test_every_knob_applies_a_cost_increase(self):
        for spec in PERTURB_SPECS.values():
            patch, effective = spec.apply(1.25)
            assert effective > 1.0
            assert patch, spec.name
            for field, overrides in patch.items():
                assert field in (
                    "net_overrides", "cpu_overrides", "cost_overrides",
                )
                assert overrides
            # Every patch must build a valid config.
            ExperimentConfig(direction="rx", **dict(SMALL, **patch))

    def test_discount_factors_are_rejected(self):
        for spec in PERTURB_SPECS.values():
            with pytest.raises(ValueError):
                spec.apply(1.0)

    def test_l2_knob_is_quantized_to_a_halving(self):
        patch, effective = PERTURB_SPECS["l2-size"].apply(1.25)
        assert effective == 2.0
        assert patch["cpu_overrides"]["l2_size"] == CpuParams().l2.size // 2

    def test_resolve_knobs(self):
        assert [s.name for s in resolve_knobs()] == list(PERTURB_SPECS)
        assert [s.name for s in resolve_knobs(["tlb-miss"])] == ["tlb-miss"]
        with pytest.raises(ValueError):
            resolve_knobs(["bogus"])


class TestRunDiagnosis:
    @pytest.fixture(scope="class")
    def report(self):
        return run_diagnosis(
            directions=("rx",), modes=("none",),
            knobs=("copy-engine", "nic-coalesce"),
            steps=1, **SMALL
        )

    def test_report_structure(self, report):
        assert report["schema"] == 1
        assert report["params"]["knobs"] == ["copy-engine", "nic-coalesce"]
        base = report["baselines"]["rx/none"]
        assert base["failed"] is False
        assert base["closed_loop_gbps"] > 0
        assert set(base["bins_pct"])  # Table 1 bins present
        assert len(report["cells"]) == 2
        for cell in report["cells"]:
            assert cell["baseline_gbps"] == base["closed_loop_gbps"]
            assert cell["perturbed_gbps"] is not None
            assert cell["delta_pct"] is not None
        assert sorted(report["ranking"]["rx/none"]) == [
            "copy-engine", "nic-coalesce",
        ]

    def test_render_mentions_every_knob(self, report):
        text = render_diagnosis(report)
        assert "Diagnosis: RX 8192B, affinity=none" in text
        assert "copy-engine" in text and "nic-coalesce" in text
        assert "cross-check vs Table 1" in text

    def test_copies_dominate_64kb_rx_none(self):
        # The acceptance corner, shrunk: the paper's Table 1 says copies
        # dominate 64KB RX without affinity, and the machine-generated
        # ranking must agree -- copy-engine above both latency- and
        # interrupt-cost knobs.
        report = run_diagnosis(
            directions=("rx",), modes=("none",),
            knobs=("copy-engine", "irq-overhead", "nic-coalesce"),
            message_size=65536, n_connections=4,
            warmup_ms=2, measure_ms=5, seed=3, steps=0,
        )
        assert report["ranking"]["rx/none"][0] == "copy-engine"
        text = render_diagnosis(report)
        assert "CONSISTENT" in text and "DIVERGENT" not in text


class TestNoneCellPropagation:
    def _report(self, perturbed):
        return {
            "schema": 1,
            "params": {
                "directions": ["rx"], "modes": ["none", "full"],
                "message_size": 65536,
            },
            "knob_info": {
                "lock-hold": {
                    "description": "", "bin": "locks",
                    "affinity_sensitive": True,
                },
            },
            "baselines": {
                "rx/none": {
                    "failed": False, "closed_loop_gbps": 2.0,
                    "saturation_offered_gbps": 1.8,
                    "saturation_gbps": 1.75, "probes": [],
                    "bins_pct": {"copies": 0.4, "locks": 0.1},
                },
                "rx/full": {"failed": True, "closed_loop_gbps": None,
                            "probes": []},
            },
            "cells": [{
                "knob": "lock-hold", "direction": "rx", "mode": "none",
                "factor": 1.25, "effective_factor": 1.25, "patch": {},
                "baseline_gbps": 2.0, "perturbed_gbps": perturbed,
                "delta_pct": None if perturbed is None else -5.0,
                "sensitivity": None if perturbed is None else 0.2,
            }],
        }

    def test_failed_cells_render_as_fail_without_raising(self):
        text = render_diagnosis(self._report(perturbed=None))
        assert "FAIL" in text
        assert "lock-hold" in text
        # The failed baseline renders its own FAIL line, not a crash.
        assert "baseline FAIL" in text

    def test_incomplete_affinity_pairs_are_marked(self):
        text = render_diagnosis(self._report(perturbed=1.9))
        assert "incomplete" in text


class TestCli:
    def test_diagnose_smoke(self, capsys, tmp_path):
        out_json = tmp_path / "diag.json"
        rc = main([
            "diagnose", "--direction", "rx", "--modes", "none",
            "--knobs", "copy-engine", "--size", "8192",
            "--connections", "2", "--warmup-ms", "1", "--measure-ms", "3",
            "--steps", "1", "--seed", "7", "--jobs", "1",
            "--json", str(out_json),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Diagnosis: RX 8192B, affinity=none" in out
        report = json.loads(out_json.read_text())
        assert report["ranking"]["rx/none"] == ["copy-engine"]

    def test_diagnose_rejects_unknown_mode(self, capsys):
        rc = main(["diagnose", "--modes", "bogus"])
        assert rc == 2
        assert "unknown" in capsys.readouterr().err

    def test_diagnose_rejects_unknown_knob(self, capsys):
        rc = main(["diagnose", "--knobs", "bogus"])
        assert rc == 2
        assert "unknown knob" in capsys.readouterr().err

    def test_diagnose_rejects_discount_factor(self, capsys):
        rc = main(["diagnose", "--factor", "0.8"])
        assert rc == 2
        assert "factor" in capsys.readouterr().err
