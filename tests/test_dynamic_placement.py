"""Tests for the dynamic interrupt-placement extensions."""

import pytest

from repro.apps.ttcp import TtcpWorkload
from repro.core.modes import EXTENDED_MODES, apply_affinity
from repro.kernel.interrupts import IrqRotator
from repro.kernel.machine import Machine
from repro.net.params import NetParams
from repro.net.rss import RssSteering
from repro.net.stack import NetworkStack

MS = 2_000_000


def build(n=4, mode="tx"):
    machine = Machine(n_cpus=2, seed=6)
    stack = NetworkStack(machine, NetParams(), n_connections=n, mode=mode,
                         message_size=16384)
    workload = TtcpWorkload(machine, stack, 16384)
    tasks = workload.spawn_all()
    return machine, stack, tasks


class TestIrqRotator:
    def test_rotates_lines(self):
        machine, stack, _ = build()
        rotator = IrqRotator(
            machine, [n.vector for n in stack.nics],
            interval_cycles=1 * MS,
        )
        machine.start()
        machine.run_for(10 * MS)
        assert rotator.rotations >= 9
        # With random per-line assignment over 10 epochs, both CPUs
        # must have received interrupts.
        assert machine.procstat.total_device_interrupts(0) > 0
        assert machine.procstat.total_device_interrupts(1) > 0

    def test_single_cpu_epoch_mode(self):
        machine, stack, _ = build()
        IrqRotator(  # constructing arms it; the engine holds the ref
            machine, [n.vector for n in stack.nics],
            interval_cycles=1 * MS, per_line=False,
        )
        machine.start()
        machine.run_for(3 * MS)
        # All lines share one affinity mask per epoch.
        masks = {machine.ioapic.get(n.vector).smp_affinity
                 for n in stack.nics}
        assert len(masks) == 1

    def test_deterministic_across_seeds(self):
        seq = []
        for _ in range(2):
            machine, stack, _ = build()
            IrqRotator(machine, [n.vector for n in stack.nics],
                       interval_cycles=1 * MS)
            machine.start()
            machine.run_for(5 * MS)
            seq.append(tuple(
                machine.ioapic.get(n.vector).smp_affinity
                for n in stack.nics
            ))
        assert seq[0] == seq[1]


class TestRssSteering:
    def test_follows_process_placement(self):
        machine, stack, tasks = build()
        steering = RssSteering(machine, stack, tasks, interval_cycles=MS)
        # Pin tasks asymmetrically; the steering should chase them.
        for i, task in enumerate(tasks):
            machine.sched_setaffinity(task, 1 << (i % 2))
        machine.start()
        machine.run_for(8 * MS)
        assert steering.updates >= 7
        assert steering.alignment() == 1.0
        for i, conn in enumerate(stack.connections):
            line = machine.ioapic.get(conn.nic.vector)
            assert line.smp_affinity == 1 << (i % 2)

    def test_requires_matching_tasks(self):
        machine, stack, tasks = build()
        with pytest.raises(ValueError):
            RssSteering(machine, stack, tasks[:-1])

    def test_retarget_counted_once_aligned(self):
        machine, stack, tasks = build()
        steering = RssSteering(machine, stack, tasks, interval_cycles=MS)
        machine.start()
        machine.run_for(10 * MS)
        # After convergence retargets stop accumulating every epoch.
        assert steering.retargets < steering.updates * len(tasks)

    def test_stop_cancels_pending_event(self):
        machine, stack, tasks = build()
        steering = RssSteering(machine, stack, tasks, interval_cycles=MS)
        machine.start()
        machine.run_for(5 * MS)
        pending = steering._pending
        steering.stop()
        # The scheduled steer is cancelled, not just flagged off.
        assert pending.cancelled
        assert steering._pending is None
        updates = steering.updates
        machine.run_for(10 * MS)
        assert steering.updates == updates  # never fires again

    def test_stop_before_first_fire(self):
        machine, stack, tasks = build()
        steering = RssSteering(machine, stack, tasks, interval_cycles=MS)
        steering.stop()
        machine.start()
        machine.run_for(5 * MS)
        assert steering.updates == 0

    def test_detach_alias(self):
        machine, stack, tasks = build()
        steering = RssSteering(machine, stack, tasks, interval_cycles=MS)
        steering.detach()
        assert steering._stopped

    def test_stop_idempotent(self):
        machine, stack, tasks = build()
        steering = RssSteering(machine, stack, tasks, interval_cycles=MS)
        steering.stop()
        steering.stop()


class TestApplyAffinityExtended:
    def test_modes_list(self):
        assert "rotate" in EXTENDED_MODES and "rss" in EXTENDED_MODES

    @pytest.mark.parametrize("mode", ["rotate", "rss"])
    def test_controller_installed(self, mode):
        machine, stack, tasks = build()
        applied = apply_affinity(machine, stack, tasks, mode)
        assert applied["controller"] is not None
        machine.start()
        machine.run_for(5 * MS)  # and it runs without error

    def test_rotator_stop_cancels_pending_event(self):
        machine, stack, _ = build()
        rotator = IrqRotator(machine, [n.vector for n in stack.nics],
                             interval_cycles=MS)
        machine.start()
        machine.run_for(5 * MS)
        rotator.stop()
        rotations = rotator.rotations
        machine.run_for(10 * MS)
        assert rotator.rotations == rotations
        assert rotator._pending is None

    @pytest.mark.parametrize("mode", ["rotate", "rss"])
    def test_experiment_stops_controller(self, mode, monkeypatch):
        """run_experiment tears the controller down at window end."""
        from repro.core import experiment as experiment_mod

        captured = {}
        real = experiment_mod.apply_affinity

        def capturing(machine, stack, tasks, m):
            applied = real(machine, stack, tasks, m)
            captured.update(applied)
            return applied

        monkeypatch.setattr(experiment_mod, "apply_affinity", capturing)
        config = experiment_mod.ExperimentConfig(
            direction="tx", message_size=16384, affinity=mode,
            n_connections=4, warmup_ms=4, measure_ms=6,
        )
        experiment_mod.run_experiment(config)
        controller = captured["controller"]
        assert controller._stopped
        assert controller._pending is None
