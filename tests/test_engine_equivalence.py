"""Array-backed state vs the reference implementations, on random traces.

The compiled charging engine stores all microarchitectural state in
flat arrays (``repro.cpu.arraystate``, ``repro.mem.directory``,
``repro.mem.arraysystem``, ``repro.prof.slotaccounting``).  These
property-style tests drive each array class and its reference twin
through the same long randomized operation sequences and require
bit-identical observable state after *every* operation -- return
values, counters, residency and LRU order.  Seeds are fixed so a
failure replays exactly.
"""

import random

import pytest

from repro.cpu.arraystate import (
    ArrayBranchPredictor,
    ArraySetAssocCache,
    ArrayTlb,
    ArrayTraceCache,
)
from repro.cpu.branch import BranchPredictor
from repro.cpu.cache import SetAssocCache, TraceCache
from repro.cpu.function import FunctionSpec
from repro.cpu.params import CacheGeometry, TlbGeometry
from repro.cpu.tlb import Tlb
from repro.mem.arraysystem import CompiledMemorySystem
from repro.mem.directory import LineDirectory
from repro.mem.system import MemorySystem
from repro.prof.accounting import ExactAccounting
from repro.prof.slotaccounting import ArrayAccounting, SlotRegistry

N_OPS = 3000


def small_cache_geometry():
    # 4 sets x 2 ways: tiny so random traces exercise eviction heavily.
    return CacheGeometry(size=512, ways=2, name="test")


class TestCacheEquivalence:
    def check_state(self, ref, arr):
        assert arr.sets_snapshot() == ref._sets
        assert arr.hits == ref.hits
        assert arr.misses == ref.misses

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_trace(self, seed):
        rng = random.Random(seed)
        geom = small_cache_geometry()
        ref = SetAssocCache(geom)
        arr = ArraySetAssocCache(geom)
        lines = list(range(24))
        for _ in range(N_OPS):
            op = rng.randrange(8)
            if op <= 2:
                line = rng.choice(lines)
                assert arr.access(line) == ref.access(line)
            elif op == 3:
                first = rng.choice(lines)
                n = rng.randrange(1, 6)
                assert arr.access_range(first, n) == ref.access_range(first, n)
            elif op == 4:
                batch = [rng.choice(lines) for _ in range(rng.randrange(6))]
                assert arr.miss_count(batch) == ref.miss_count(batch)
            elif op == 5:
                line = rng.choice(lines)
                assert arr.probe(line) == ref.probe(line)
                ref.fill(line)
                arr.fill(line)
            elif op == 6:
                line = rng.choice(lines)
                ref.invalidate(line)
                arr.invalidate(line)
            else:
                assert arr.occupancy() == ref.occupancy()
                assert sorted(arr.resident_lines()) == sorted(
                    ref.resident_lines())
            self.check_state(ref, arr)
        ref.flush()
        arr.flush()
        self.check_state(ref, arr)

    def test_miss_count_consumes_generator_once(self):
        arr = ArraySetAssocCache(small_cache_geometry())
        arr.fill(3)
        assert arr.miss_count(line for line in (3, 3, 11)) == 1
        assert arr.hits == 2 and arr.misses == 1


class TestTraceCacheEquivalence:
    @pytest.mark.parametrize("seed", [4, 5])
    def test_random_fetch_trace(self, seed):
        rng = random.Random(seed)
        geom = small_cache_geometry()
        ref = TraceCache(geom)
        arr = ArrayTraceCache(geom)
        for _ in range(N_OPS):
            first = rng.randrange(24)
            n = rng.randrange(1, 5)
            batch = range(first, first + n)
            assert arr.miss_count(batch) == ref.miss_count(batch)
            assert arr.hits == ref.hits
            assert arr.misses == ref.misses
            # Reference sets are dicts in LRU-to-MRU order; the array
            # keeps MRU first.
            assert [list(reversed(s)) for s in arr.sets_snapshot()] == [
                list(bucket) for bucket in ref._sets
            ]
            if rng.randrange(50) == 0:
                ref.flush()
                arr.flush()


class TestTlbEquivalence:
    PAGE = 4096

    def check_state(self, ref, arr):
        assert arr.resident_pages() == ref.resident_pages()
        assert arr.hits == ref.hits
        assert arr.walks == ref.walks

    @pytest.mark.parametrize("seed", [6, 7, 8])
    def test_random_trace(self, seed):
        rng = random.Random(seed)
        geom = TlbGeometry(entries=8, name="test")
        ref = Tlb(geom)
        arr = ArrayTlb(geom)
        for _ in range(N_OPS):
            op = rng.randrange(8)
            if op <= 3:
                page = rng.randrange(20)
                assert arr.access(page) == ref.access(page)
            elif op <= 5:
                addr = rng.randrange(20 * self.PAGE)
                size = rng.choice([0, 1, 64, self.PAGE, 3 * self.PAGE])
                assert arr.access_range(addr, size) == ref.access_range(
                    addr, size)
            elif op == 6:
                boundary = rng.randrange(20)
                ref.flush_below(boundary)
                arr.flush_below(boundary)
            else:
                ref.flush()
                arr.flush()
            self.check_state(ref, arr)

    def test_flush_below_keeps_buffer_identity(self):
        # The C engine binds the page buffer once; compaction must not
        # reallocate it.
        arr = ArrayTlb(TlbGeometry(entries=4, name="test"))
        buf = arr._pages
        for page in (1, 9, 2, 8):
            arr.access(page)
        arr.flush_below(5)
        assert arr._pages is buf
        assert arr.resident_pages() == [8, 9]


class TestBranchPredictorEquivalence:
    @pytest.mark.parametrize("seed", [9, 10, 11])
    def test_random_trace(self, seed):
        rng = random.Random(seed)
        names = ["fn%d" % i for i in range(12)]
        ref = BranchPredictor(capacity=6)
        arr = ArrayBranchPredictor(6, SlotRegistry(capacity=4))
        for _ in range(N_OPS):
            op = rng.randrange(10)
            name = rng.choice(names)
            if op <= 6:
                branches = rng.randrange(-1, 40)
                rate = rng.choice([0.0, 0.004, 0.011, 0.3, 1.5])
                assert arr.predict(name, branches, rate) == ref.predict(
                    name, branches, rate)
            elif op == 7:
                ref.forget(name)
                arr.forget(name)
            else:
                assert arr.warmth(name) == ref.warmth(name)
            assert arr.mispredicts == ref.mispredicts
            assert arr.cold_events == ref.cold_events
            assert arr.tracked_names() == list(ref._entries)


class TestLineDirectory:
    def test_random_inserts_against_dict(self):
        rng = random.Random(12)
        model = {}
        directory = LineDirectory(initial_slots=16)
        # Contiguous zones plus scattered lines; enough to force growth.
        lines = list(range(1000, 1200)) + [rng.randrange(1 << 40)
                                           for _ in range(200)]
        rng.shuffle(lines)
        for line in lines:
            if line not in model:
                model[line] = [rng.randrange(16), rng.randrange(-1, 4)]
                directory.insert(line, *model[line])
            else:
                idx = directory.find(line)
                model[line][0] |= 1 << rng.randrange(4)
                directory._sharers[idx] = model[line][0]
        assert len(directory) == len(model)
        for line, (sharers, owner) in model.items():
            assert directory.get(line) == (sharers, owner)
            assert line in directory
        assert directory.get(max(model) + 1) is None
        assert sorted(directory.items()) == sorted(
            (line, sharers, owner)
            for line, (sharers, owner) in model.items())

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            LineDirectory(initial_slots=48)


class _RecordingCpu:
    """Stands in for a CPU: records coherence invalidations."""

    def __init__(self, index, domain):
        self.index = index
        self.domain = domain
        self.invalidated = []

    def invalidate_line(self, line):
        self.invalidated.append(line)


def _attach_cpus(memsys):
    cpus = [_RecordingCpu(i, domain=i // 2) for i in range(4)]
    for cpu in cpus:
        memsys.attach_cpu(cpu)
    return cpus


class TestMemorySystemEquivalence:
    def check_state(self, ref, arr, ref_cpus, arr_cpus, lines):
        assert arr.invalidations == ref.invalidations
        assert arr.c2c_transfers == ref.c2c_transfers
        assert arr.dma_lines_read == ref.dma_lines_read
        assert arr.dma_lines_written == ref.dma_lines_written
        for line in lines:
            assert arr.sharers_of(line) == ref.sharers_of(line)
            assert arr.owner_of(line) == ref.owner_of(line)
        for rc, ac in zip(ref_cpus, arr_cpus):
            assert ac.invalidated == rc.invalidated

    @pytest.mark.parametrize("seed", [13, 14])
    @pytest.mark.parametrize("dma_read_invalidates", [True, False])
    def test_random_coherence_trace(self, seed, dma_read_invalidates):
        rng = random.Random(seed)
        ref = MemorySystem(dma_read_invalidates=dma_read_invalidates)
        arr = CompiledMemorySystem(dma_read_invalidates=dma_read_invalidates)
        ref_cpus = _attach_cpus(ref)
        arr_cpus = _attach_cpus(arr)
        lines = list(range(64))
        for _ in range(N_OPS):
            op = rng.randrange(10)
            line = rng.choice(lines)
            domain = rng.randrange(2)
            if op <= 2:
                ref.note_fill(line, domain)
                arr.note_fill(line, domain)
            elif op <= 5:
                assert arr.read_miss(line, domain) == ref.read_miss(
                    line, domain)
            elif op <= 7:
                assert arr.make_exclusive(line, domain) == ref.make_exclusive(
                    line, domain)
            elif op == 8:
                addr, size = rng.randrange(64 * 64), rng.choice([0, 1, 200])
                ref.dma_write(addr, size)
                arr.dma_write(addr, size)
            else:
                addr, size = rng.randrange(64 * 64), rng.choice([0, 1, 200])
                ref.dma_read(addr, size)
                arr.dma_read(addr, size)
        self.check_state(ref, arr, ref_cpus, arr_cpus, lines)

    def test_counter_reset_assignment(self):
        # Machine.reset_measurement assigns these counters directly.
        arr = CompiledMemorySystem()
        arr.note_fill(5, 0)
        arr.make_exclusive(5, 1)
        _attach_cpus(arr)
        arr.invalidations = 0
        arr.c2c_transfers = 0
        assert arr.invalidations == 0
        assert arr._stats[0] == 0

    def test_bus_update_matches_reference(self):
        from repro.cpu.params import CostModel

        costs = CostModel()
        ref = MemorySystem()
        arr = CompiledMemorySystem()
        rng = random.Random(15)
        for _ in range(100):
            slots = rng.randrange(0, 5000)
            window = rng.choice([0, 1000, 4000])
            ref.update_bus(slots, window, costs)
            arr.update_bus(slots, window, costs)
            assert arr.bus_utilization == ref.bus_utilization
            assert arr.bus_delay == ref.bus_delay


def _spec(name, bin="engine"):
    return FunctionSpec(name=name, bin=bin, code_addr=0x1000, code_size=256)


class TestAccountingEquivalence:
    def test_random_charges_match_reference(self):
        rng = random.Random(16)
        specs = [_spec("fn%d" % i, bin=("engine" if i % 3 else "other"))
                 for i in range(40)]
        registry = SlotRegistry(capacity=8)  # force growth mid-trace
        ref = ExactAccounting()
        arr = ArrayAccounting(n_cpus=2, registry=registry)
        for _ in range(N_OPS):
            spec = rng.choice(specs)
            cpu = rng.randrange(2)
            vec = [rng.randrange(100) for _ in range(11)]
            ref.record(cpu, spec, *vec)
            arr.record(cpu, spec, *vec)
        assert arr.rows() == [
            (key, list(vec)) for key, vec in ref.rows()
        ]
        for cpu_index in (None, 0, 1):
            for include_idle in (False, True):
                assert arr.per_function(cpu_index, include_idle) == \
                    ref.per_function(cpu_index, include_idle)
            assert arr.per_bin(cpu_index) == ref.per_bin(cpu_index)
        for include_idle in (False, True):
            assert arr.total(include_idle) == ref.total(include_idle)
        assert arr.cpus() == ref.cpus()

    def test_disabled_records_nothing(self):
        registry = SlotRegistry()
        arr = ArrayAccounting(n_cpus=1, registry=registry)
        arr.enabled = False
        arr.record(0, _spec("fn"), *([1] * 11))
        assert arr.rows() == []
        arr.enabled = True
        arr.record(0, _spec("fn"), *([1] * 11))
        assert len(arr.rows()) == 1

    def test_reset_preserves_slots(self):
        registry = SlotRegistry()
        arr = ArrayAccounting(n_cpus=2, registry=registry)
        spec = _spec("fn")
        arr.record(1, spec, *([2] * 11))
        slot = registry.slot_for(spec)
        arr.reset()
        assert arr.rows() == []
        assert registry.slot_for(spec) == slot

    def test_registry_growth_notifies_branch_predictor(self):
        registry = SlotRegistry(capacity=2)
        bp = ArrayBranchPredictor(8, registry)
        ref = BranchPredictor(capacity=8)
        for i in range(10):  # crosses two growths
            name = "fn%d" % i
            assert bp.predict(name, 20, 0.01) == ref.predict(name, 20, 0.01)
        assert bp.tracked_names() == list(ref._entries)
        assert registry.capacity >= 10
