"""Deterministic fault injection: plans, injector, invariants, sweeps.

The paper's testbed is loss-free; the fault subsystem exists so the
*simulator* can be trusted -- seeded wire faults exercise the stack's
recovery machinery (dup-ACK fast retransmit, RTO backoff, OOO
reassembly) while the invariant checker proves the simulation stayed
self-consistent, fault-free runs stay byte-identical, and parallel
lossy sweeps equal serial ones.
"""

import json

import pytest

from repro.apps.ttcp import TtcpWorkload
from repro.core.experiment import ExperimentConfig, ResultCache, run_experiment
from repro.core.parallel import SweepRunner
from repro.cpu.events import CYCLES
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    SimulationInvariantError,
)
from repro.kernel.machine import Machine
from repro.net.params import NetParams
from repro.net.stack import NetworkStack

MS = 2_000_000  # cycles per millisecond at the modelled 2 GHz


def _cfg(faults, **overrides):
    base = dict(
        direction="tx",
        message_size=1024,
        affinity="none",
        n_connections=2,
        warmup_ms=1,
        measure_ms=6,
        seed=3,
        faults=faults,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _canon(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def _fault_data(result):
    faults = result.to_dict().get("faults")
    assert faults is not None, "faulted run must report fault counters"
    return faults


def _function_cycles(result, name):
    """Total cycles attributed to ``name``, plus its bin."""
    total, bin = 0, None
    for fns in result["per_cpu_functions"].values():
        entry = fns.get(name)
        if entry is not None:
            bin = entry["bin"]
            total += entry["events"][CYCLES]
    return total, bin


# ---------------------------------------------------------------------------
# FaultPlan: parsing, validation, serialization
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_parsing_with_aliases(self):
        plan = FaultPlan.from_spec(
            "loss=0.01, depth=4, dup=0.02, irq=0.1, rto_ms=3"
        )
        assert plan.loss == 0.01
        assert plan.reorder_depth == 4
        assert plan.duplicate == 0.02
        assert plan.irq_delay == 0.1
        assert plan.rto_ms == 3
        assert plan.enabled

    def test_drop_is_an_alias_for_loss(self):
        assert FaultPlan.from_spec("drop=0.5").loss == 0.5

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("banana=1")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="not a rate"):
            FaultPlan(loss=1.5)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            FaultPlan(direction="sideways")

    def test_coerce_round_trips(self):
        plan = FaultPlan(loss=0.1)
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(plan.to_dict()).loss == 0.1
        assert FaultPlan.coerce("loss=0.1").loss == 0.1

    def test_empty_plan_is_disabled(self):
        assert not FaultPlan().enabled
        assert FaultPlan(rto_ms=5).enabled is False  # rto alone injects nothing


# ---------------------------------------------------------------------------
# Cache-key stability: fault-free configs are unchanged
# ---------------------------------------------------------------------------


class TestCacheKeyStability:
    def test_fault_free_config_dict_has_no_faults_key(self):
        cfg = _cfg(None)
        assert "faults" not in cfg.to_dict()
        assert not cfg.label().endswith("+faults")

    def test_faulted_config_is_keyed_apart(self):
        plain = _cfg(None)
        lossy = _cfg("loss=0.01")
        assert plain.key() != lossy.key()
        assert lossy.label().endswith("+faults")
        assert lossy.to_dict()["faults"]["loss"] == 0.01

    def test_fault_free_artefacts_identical_with_and_without_subsystem(self):
        # faults=None must not perturb the simulation at all.
        a = run_experiment(_cfg(None, measure_ms=2))
        b = run_experiment(_cfg(None, measure_ms=2))
        assert _canon(a) == _canon(b)
        assert "faults" not in a.to_dict()


# ---------------------------------------------------------------------------
# Injected faults drive the recovery machinery (issue satellite d)
# ---------------------------------------------------------------------------


class TestRecoveryUnderFaults:
    @pytest.fixture(scope="class")
    def lossy(self):
        return run_experiment(_cfg("loss=0.25,rto_ms=3"))

    def test_lossy_plan_fires_rtos(self, lossy):
        faults = _fault_data(lossy)
        assert faults["injected"]["drops"] > 0
        assert faults["rto_fires"] > 0

    def test_lossy_plan_charges_retransmit_path(self, lossy):
        cycles, bin = _function_cycles(lossy, "tcp_retransmit_skb")
        assert cycles > 0
        assert bin == "engine"

    def test_reorder_only_fast_retransmits_without_rtos(self):
        result = run_experiment(
            _cfg("reorder=0.08,depth=4,rto_ms=5", direction="rx")
        )
        faults = _fault_data(result)
        assert faults["injected"]["reorders"] > 0
        assert faults["rto_fires"] == 0
        assert faults["fast_retransmits"] + faults["peer_retransmits"] > 0
        assert faults["dup_acks"] > 0
        assert faults["reorder_depth_peak"] >= 1

    def test_duplicates_are_absorbed(self):
        result = run_experiment(_cfg("dup=0.05", direction="rx"))
        faults = _fault_data(result)
        assert faults["injected"]["dups"] > 0
        assert faults["sut_dup_segments"] > 0

    def test_irq_delay_counted(self):
        result = run_experiment(_cfg("irq=0.3,irq_delay_us=120"))
        faults = _fault_data(result)
        assert faults["irqs_delayed"] > 0

    def test_plan_drop_every_n_subsumes_legacy_knob(self):
        result = run_experiment(_cfg("drop_every_n=40,rto_ms=3"))
        faults = _fault_data(result)
        assert faults["injected"]["drops"] > 0
        assert faults["retransmitted_segments"] + faults["peer_retransmits"] > 0

    def test_lossy_run_is_deterministic(self):
        a = run_experiment(_cfg("loss=0.1,reorder=0.02,dup=0.02,rto_ms=3"))
        b = run_experiment(_cfg("loss=0.1,reorder=0.02,dup=0.02,rto_ms=3"))
        assert _canon(a) == _canon(b)


# ---------------------------------------------------------------------------
# Parallel lossy sweep == serial lossy sweep
# ---------------------------------------------------------------------------


class TestLossySweepParity:
    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        configs = [
            _cfg("loss=0.1,rto_ms=3", message_size=size, measure_ms=3)
            for size in (1024, 8192)
        ]
        serial = [run_experiment(c) for c in configs]
        runner = SweepRunner(jobs=2, cache=ResultCache(str(tmp_path)))
        parallel = runner.run(configs)
        assert runner.report.ok
        for s, p in zip(serial, parallel):
            assert _canon(s) == _canon(p)


# ---------------------------------------------------------------------------
# InvariantChecker: silent on healthy runs, loud on corruption
# ---------------------------------------------------------------------------


def _build(seed=21, faults=None):
    machine = Machine(n_cpus=2, seed=seed)
    stack = NetworkStack(machine, NetParams(rto_ms=10), n_connections=2,
                         mode="tx", message_size=4096)
    workload = TtcpWorkload(machine, stack, 4096)
    workload.spawn_all()
    if faults is not None:
        FaultInjector(machine, FaultPlan.coerce(faults)).attach(stack)
    machine.start()
    machine.run_for(10 * MS)
    return machine, stack


class TestInvariantChecker:
    def test_healthy_run_passes(self):
        machine, stack = _build()
        InvariantChecker(machine, stack).check()  # must not raise

    def test_faulted_run_passes(self):
        machine, stack = _build(faults="loss=0.05,reorder=0.02,dup=0.02")
        InvariantChecker(machine, stack).check()

    def test_seeded_stream_corruption_detected(self):
        machine, stack = _build()
        stack.connections[0].sock.rcv_nxt += 1  # simulate a lost byte
        with pytest.raises(SimulationInvariantError) as err:
            InvariantChecker(machine, stack).check()
        assert err.value.violations

    def test_seeded_double_free_detected(self):
        machine, stack = _build()
        cache = stack.pools.head_cache
        obj = cache.alloc(0)
        cache.free(obj, 0)
        cache.free(obj, 0)  # deliberate double free
        with pytest.raises(SimulationInvariantError) as err:
            InvariantChecker(machine, stack).check()
        assert any("double" in v for v in err.value.violations)

    def test_event_time_regression_detected(self):
        machine, stack = _build()
        machine.engine.monotonicity_violations += 1  # as if time ran backward
        with pytest.raises(SimulationInvariantError):
            InvariantChecker(machine, stack).check()

    def test_error_carries_event_trace_tail(self):
        machine, stack = _build(faults="loss=0.05")  # attach enables tracing
        machine.engine.monotonicity_violations += 1
        with pytest.raises(SimulationInvariantError) as err:
            InvariantChecker(machine, stack).check()
        assert err.value.trace  # recent events included for debugging


# ---------------------------------------------------------------------------
# Satellite a: Nic.reset_stats must reset tx_drops
# ---------------------------------------------------------------------------


class TestNicResetStats:
    def test_tx_drops_reset_with_the_window(self):
        machine, stack = _build()
        nic = stack.nics[0]
        nic.tx_drops = 7
        nic.irqs_delayed = 3
        nic.reset_stats()
        assert nic.tx_drops == 0
        assert nic.irqs_delayed == 0
