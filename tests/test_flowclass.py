"""Flyweight flow state and flow-class aggregation.

The contract under test (see ``repro/net/flowclass.py``): the
class-aggregated path is *bit-identical* to the exact path when every
class is a singleton, matches it within tolerance in the paced
sub-saturation regime at N=64, and carries 100K flows in bounded
memory and wall-clock -- while the ``aggregation`` config knob stays
out of pre-existing cache keys.
"""

import pytest

from repro.core.experiment import (
    AUTO_AGGREGATION_MIN_FLOWS,
    ExperimentConfig,
    run_experiment,
)
from repro.core.scale import run_scale_sweep
from repro.net.flowclass import flow_population, partition_flows
from repro.net.params import NetParams
from repro.net.rss import (
    TOEPLITZ_KEY,
    flow_tuple_bytes,
    toeplitz_hash,
    toeplitz_hash_fast,
)
from repro.net.sock import BUFFER_SCALE_CAP, Sock
from repro.prof.slotaccounting import ClassColumns


def _config(**overrides):
    kwargs = dict(
        workload="ttcp",
        direction="rx",
        affinity="rss",
        n_connections=64,
        n_cpus=8,
        n_queues=8,
        message_size=16384,
        warmup_ms=2,
        measure_ms=3,
        seed=7,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


class TestFastToeplitz:
    # The table-driven hash must agree with the bit-serial reference
    # everywhere; the MS verification vectors pin both to the spec.
    def test_ms_vector_tcp(self):
        data = (bytes((66, 9, 149, 187)) + bytes((161, 142, 100, 80))
                + (2794).to_bytes(2, "big") + (1766).to_bytes(2, "big"))
        assert toeplitz_hash_fast(data) == 0x51CCC178
        assert toeplitz_hash_fast(data) == toeplitz_hash(data)

    def test_ms_vector_ip_only(self):
        data = bytes((66, 9, 149, 187)) + bytes((161, 142, 100, 80))
        assert toeplitz_hash_fast(data) == 0x323E8FC2

    def test_matches_reference_on_flow_tuples(self):
        for conn_id in range(512):
            data = flow_tuple_bytes(conn_id)
            assert toeplitz_hash_fast(data) == toeplitz_hash(data)

    def test_matches_reference_on_arbitrary_bytes(self):
        # Deterministic pseudo-random inputs of every modeled length.
        state = 0x2545F491
        for length in (4, 8, 12):
            for _ in range(64):
                data = bytes(
                    (state := (state * 48271) % 0x7FFFFFFF) & 0xFF
                    for _ in range(length)
                )
                assert (toeplitz_hash_fast(data, TOEPLITZ_KEY)
                        == toeplitz_hash(data, TOEPLITZ_KEY))


class TestPartition:
    def test_population_is_interned(self):
        assert flow_population(1000, 8) is flow_population(1000, 8)
        assert flow_population(1000, 8) is not flow_population(1000, 4)

    def test_weights_cover_every_flow(self):
        pop, classes = partition_flows(1000, 8)
        assert sum(fc.weight for fc in classes) == 1000
        assert len(classes) == 8
        assert pop.n_flows == 1000

    def test_representative_is_lowest_conn_id(self):
        pop, classes = partition_flows(64, 8)
        for fc in classes:
            assert pop.queue_for(fc.rep_conn_id) == fc.queue
            earlier = [
                c for c in range(fc.rep_conn_id)
                if pop.queue_for(c) == fc.queue
            ]
            assert earlier == []

    def test_occupancy_matches_weights(self):
        pop, classes = partition_flows(1000, 8)
        occ = pop.occupancy()
        for fc in classes:
            assert occ[fc.queue] == fc.weight


class TestFlyweight:
    def test_netparams_interned_and_frozen(self):
        a = NetParams.interned(mss=1448)
        b = NetParams.interned(mss=1448)
        assert a is b
        with pytest.raises(AttributeError):
            a.mss = 9000

    def test_buffer_scaling_is_capped(self):
        class _Machine:
            def __init__(self):
                from repro.mem.layout import AddressSpace

                self.space = AddressSpace()

            def new_lock(self, name):
                return None

        machine = _Machine()
        params = NetParams.interned()
        sock = Sock(machine, params, 0, "conn0")
        sock.scale_buffers(100 * BUFFER_SCALE_CAP)
        assert sock.rcvbuf == params.rcvbuf * BUFFER_SCALE_CAP
        assert sock.sndbuf == params.sndbuf * BUFFER_SCALE_CAP
        assert sock.max_window == params.max_window * BUFFER_SCALE_CAP

    def test_class_columns_zero_in_place(self):
        cols = ClassColumns(4, ("bytes", "messages"))
        view = cols.column("bytes")
        view[2] += 7
        assert list(cols.column("bytes")) == [0, 0, 7, 0]
        cols.zero()
        # The *same* view stays valid after a reset -- no re-binding.
        assert list(view) == [0, 0, 0, 0]


class TestEquivalence:
    def test_singleton_classes_are_bit_identical(self):
        # n == queue-permutation population: every class is a
        # singleton, so the aggregated stack must rebuild the exact
        # stack operation for operation.
        base = dict(n_connections=2, n_cpus=2, n_queues=2)
        exact = run_experiment(_config(aggregation="exact", **base))
        klass = run_experiment(_config(aggregation="class", **base))
        d_exact, d_klass = exact.to_dict(), klass.to_dict()
        d_exact.pop("config"), d_klass.pop("config")
        assert d_exact == d_klass

    def test_aggregation_matches_exact_at_n64(self):
        # The validity-envelope cell: paced sub-saturation, 64 flows
        # over 8 queues.  Both headline metrics within 2%.
        exact = run_experiment(_config(aggregation="exact",
                                       offered_gbps=2.0))
        klass = run_experiment(_config(aggregation="class",
                                       offered_gbps=2.0))
        assert klass.throughput_gbps == pytest.approx(
            exact.throughput_gbps, rel=0.02
        )
        assert klass.cost_ghz_per_gbps == pytest.approx(
            exact.cost_ghz_per_gbps, rel=0.02
        )

    def test_aggregated_payload_reports_population(self):
        klass = run_experiment(_config(aggregation="class",
                                       offered_gbps=2.0))
        flows = klass["flows"]
        assert flows["n_flows"] == 64
        assert flows["n_simulated"] == 8
        assert sum(c["weight"] for c in flows["classes"]) == 64
        assert flows["per_flow_throughput_gbps"] > 0


class TestConfig:
    def test_exact_default_stays_out_of_cache_keys(self):
        d = _config().to_dict()
        assert "aggregation" not in d

    def test_class_enters_cache_key_and_label(self):
        config = _config(aggregation="class")
        assert config.to_dict()["aggregation"] == "class"
        assert "+agg" in config.label()

    def test_auto_resolves_by_population(self):
        small = _config(aggregation="auto")
        assert small.aggregation == "exact"
        assert small.to_dict() == _config().to_dict()
        big = _config(aggregation="auto",
                      n_connections=AUTO_AGGREGATION_MIN_FLOWS + 1)
        assert big.aggregation == "class"

    def test_class_requires_multiqueue(self):
        with pytest.raises(ValueError):
            _config(aggregation="class", n_queues=1, n_cpus=2,
                    n_connections=4)

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError):
            _config(aggregation="bogus")


class TestScaleAxis:
    def test_connections_below_queues_rejected(self):
        with pytest.raises(ValueError):
            run_scale_sweep(
                "rx", cpus=(2,), sizes=(16384,), modes=("rss",),
                n_queues=8, connections=(4,),
                warmup_ms=2, measure_ms=3, seed=7,
            )

    def test_connections_axis_keys_are_4_tuples(self):
        sweep = run_scale_sweep(
            "rx", cpus=(2,), sizes=(16384,), modes=("rss",),
            n_queues=4, connections=(8, 1000),
            warmup_ms=1, measure_ms=2, seed=7,
        )
        assert sorted(sweep) == [
            (2, 16384, "rss", 8), (2, 16384, "rss", 1000),
        ]
        assert all(r is not None for r in sweep.values())
        # auto aggregation: the small population ran exact, the large
        # one collapsed to one representative per populated queue.
        assert sweep[(2, 16384, "rss", 8)].payload_get("flows") is None
        flows = sweep[(2, 16384, "rss", 1000)].payload_get("flows")
        assert flows is not None and flows["n_flows"] == 1000


class TestHundredThousandFlows:
    def test_100k_smoke_is_tractable(self):
        result = run_experiment(_config(
            aggregation="class",
            n_connections=100_000,
            offered_gbps=4.5,
            warmup_ms=1,
            measure_ms=2,
        ))
        assert result["flows"]["n_flows"] == 100_000
        assert result["flows"]["n_simulated"] == 8
        # Goodput tracks the offered aggregate: the population really
        # is being modeled, not dropped on the floor.
        assert result.throughput_gbps == pytest.approx(4.5, rel=0.05)
        # The tentpole's whole point: bounded resources at 100K flows.
        assert result.wall_s < 120
        if result.peak_rss_kb is not None:
            assert result.peak_rss_kb < 1.5 * 1024 * 1024
