"""Golden end-to-end determinism / equivalence suite.

``tests/golden/metrics.json`` pins, for a fixed seed, the *complete*
result payload (as a SHA-256 over the sorted-key JSON) plus a few
plain metrics of every cell in a 36-cell matrix: both directions,
three message sizes, all four affinity modes -- plus the two
multi-queue steering modes (``rss`` / ``flow-director``) on a shared
4-queue 10GbE-class NIC, which pins the Toeplitz spread, Flow
Director retarget timing and the reordering counters bit-for-bit.

The hash makes this a bit-identity check: any change to simulated
cache behaviour, event ordering, cycle charging or accounting -- no
matter how small -- flips it.  That is the safety net under the
hot-path optimizations (batched walks, memoized fetch costs, the
dict-backed trace cache, the tuple event heap): each is required to
be a pure speedup, and this suite is the proof.

Regenerate after an *intentional* model change with::

    PYTHONPATH=src python tests/test_golden_determinism.py --regenerate

and eyeball the diff of the plain metrics before committing.
"""

import hashlib
import json
import os

import pytest

from repro.core.experiment import ExperimentConfig, run_experiment

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "metrics.json")

DIRECTIONS = ("tx", "rx")
SIZES = (1024, 16384, 65536)
MODES = ("none", "proc", "irq", "full")
MQ_MODES = ("rss", "flow-director")

#: NIC-offload cells, pinned alongside the classic 36.  ``toe`` rides
#: the affinity field; ``lso``/``gro`` run under full affinity with
#: the knob flipped through net_overrides.  Offload is all-new code
#: gated off by default, so these cells pin its event ordering and
#: engine accounting without touching the pre-existing hashes.
OFFLOAD_KNOBS = {
    "toe": ("toe", None),
    "lso": ("full", {"lso": True}),
    "gro": ("full", {"gro": True}),
}
OFFLOAD_CELLS = (
    ("tx-65536-toe", "tx", 65536, "toe"),
    ("rx-65536-toe", "rx", 65536, "toe"),
    ("tx-65536-lso", "tx", 65536, "lso"),
    ("rx-65536-gro", "rx", 65536, "gro"),
)


def _config(direction, size, mode):
    # Small windows keep the 36-cell matrix affordable in tier-1; the
    # hash covers the full payload, so even tiny windows pin every
    # counter the simulator produces.
    if mode in MQ_MODES:
        # The steering modes run on one shared 4-queue NIC with more
        # flows than queues, so the Flow Director cells exercise
        # queue sharing and filter retargets.
        return ExperimentConfig(
            direction=direction,
            message_size=size,
            affinity=mode,
            n_connections=8,
            n_cpus=4,
            n_queues=4,
            warmup_ms=2,
            measure_ms=3,
            seed=7,
        )
    affinity, net_overrides = OFFLOAD_KNOBS.get(mode, (mode, None))
    return ExperimentConfig(
        direction=direction,
        message_size=size,
        affinity=affinity,
        n_connections=4,
        warmup_ms=2,
        measure_ms=3,
        seed=7,
        **({} if net_overrides is None
           else {"net_overrides": net_overrides})
    )


def _cell(direction, size, mode):
    result = run_experiment(_config(direction, size, mode))
    payload = result.to_dict()
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return payload, digest


def _load_golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


GOLDEN = _load_golden()

CELLS = [
    ("%s-%d-%s" % (d, s, m), d, s, m)
    for d in DIRECTIONS for s in SIZES for m in MODES + MQ_MODES
] + list(OFFLOAD_CELLS)


def test_golden_table_is_complete():
    assert sorted(GOLDEN) == sorted(key for key, _, _, _ in CELLS)


@pytest.mark.parametrize(
    "key,direction,size,mode",
    CELLS,
    ids=[key for key, _, _, _ in CELLS],
)
def test_golden_cell(key, direction, size, mode):
    want = GOLDEN[key]
    payload, digest = _cell(direction, size, mode)
    # Plain metrics first: when a model change is intentional, these
    # tell you *what* moved; the hash alone only tells you something
    # did.
    assert payload["busy_cycles"] == want["busy_cycles"]
    assert payload["total_bytes"] == want["total_bytes"]
    assert payload["window_cycles"] == want["window_cycles"]
    assert str(payload["throughput_gbps"]) == want["throughput_gbps"]
    got_bins = {b: v[:7] for b, v in payload["bins"].items()}
    assert got_bins == want["bins"]
    assert digest == want["sha256"]


def _regenerate():
    table = {}
    for key, direction, size, mode in CELLS:
        payload, digest = _cell(direction, size, mode)
        table[key] = {
            "sha256": digest,
            "busy_cycles": payload["busy_cycles"],
            "total_bytes": payload["total_bytes"],
            "window_cycles": payload["window_cycles"],
            "throughput_gbps": str(payload["throughput_gbps"]),
            "bins": {b: v[:7] for b, v in payload["bins"].items()},
        }
        print("%-16s %s" % (key, digest))
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(table, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print("wrote %s (%d cells)" % (GOLDEN_PATH, len(table)))


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
