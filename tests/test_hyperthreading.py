"""Tests for the SMT (HyperThreading) extension."""


from repro.apps.ttcp import TtcpWorkload
from repro.core.modes import apply_affinity
from repro.cpu.events import LLC_MISSES
from repro.kernel.machine import Machine
from repro.mem.layout import CACHE_LINE
from repro.net.params import NetParams
from repro.net.stack import NetworkStack

MS = 2_000_000


class TestConstruction:
    def test_logical_cpu_count_doubles(self):
        machine = Machine(n_cpus=2, hyperthreading=True)
        assert machine.n_cpus == 4
        assert machine.physical_cpus == 2

    def test_siblings_share_caches(self):
        machine = Machine(n_cpus=2, hyperthreading=True)
        c0, c1, c2, c3 = machine.cpus
        assert c0.l1 is c1.l1 and c0.l3 is c1.l3
        assert c2.l1 is c3.l1
        assert c0.l1 is not c2.l1
        assert c0.sibling is c1 and c1.sibling is c0

    def test_domains(self):
        machine = Machine(n_cpus=2, hyperthreading=True)
        assert [c.domain for c in machine.cpus] == [0, 0, 1, 1]

    def test_no_ht_unchanged(self):
        machine = Machine(n_cpus=2)
        assert machine.n_cpus == 2
        assert all(c.sibling is None for c in machine.cpus)


class TestSharedCacheCoherence:
    def test_sibling_write_does_not_invalidate(self):
        """A write by one HT sibling keeps the line warm for the other
        (same physical caches, same coherence domain)."""
        machine = Machine(n_cpus=2, hyperthreading=True)
        fn = machine.functions.register("t", "engine", branch_frac=0.0)
        obj = machine.space.alloc("shared", CACHE_LINE)
        machine.cpus[0].charge(fn, 10, writes=[(obj.addr, CACHE_LINE)])
        before = machine.cpus[1].totals[LLC_MISSES]
        machine.cpus[1].charge(fn, 10, reads=[(obj.addr, CACHE_LINE)])
        assert machine.cpus[1].totals[LLC_MISSES] == before  # warm hit

    def test_cross_core_write_still_invalidates(self):
        machine = Machine(n_cpus=2, hyperthreading=True)
        fn = machine.functions.register("t", "engine", branch_frac=0.0)
        obj = machine.space.alloc("shared", CACHE_LINE)
        machine.cpus[0].charge(fn, 10, reads=[(obj.addr, CACHE_LINE)])
        machine.cpus[2].charge(fn, 10, writes=[(obj.addr, CACHE_LINE)])
        before = machine.cpus[0].totals[LLC_MISSES]
        machine.cpus[0].charge(fn, 10, reads=[(obj.addr, CACHE_LINE)])
        assert machine.cpus[0].totals[LLC_MISSES] == before + 1


class TestSmtContention:
    def test_busy_sibling_slows_execution(self):
        machine = Machine(n_cpus=2, hyperthreading=True)
        fn = machine.functions.register("t", "engine", branch_frac=0.0)
        cpu = machine.cpus[0]
        cpu.charge(fn, 3000)  # warm code
        alone = cpu.charge(fn, 3000)
        machine.cpus[1].recent_load = 1.0
        contended = cpu.charge(fn, 3000)
        assert contended > alone
        ratio = contended / float(alone)
        assert 1.3 < ratio < 2.0

    def test_idle_sibling_costs_nothing(self):
        machine = Machine(n_cpus=2, hyperthreading=True)
        fn = machine.functions.register("t", "engine", branch_frac=0.0)
        cpu = machine.cpus[0]
        cpu.charge(fn, 3000)
        a = cpu.charge(fn, 3000)
        machine.cpus[1].recent_load = 0.0
        b = cpu.charge(fn, 3000)
        assert a == b


class TestHtWorkload:
    def test_ht_machine_runs_workload(self):
        machine = Machine(n_cpus=2, seed=3, hyperthreading=True)
        stack = NetworkStack(machine, NetParams(), n_connections=8,
                             mode="tx", message_size=16384)
        workload = TtcpWorkload(machine, stack, 16384)
        tasks = workload.spawn_all()
        apply_affinity(machine, stack, tasks, "full")
        machine.start()
        machine.run_for(10 * MS)
        assert workload.total_bytes() > 0
        # All four logical CPUs took interrupts in full-affinity mode.
        for i in range(4):
            assert machine.procstat.total_device_interrupts(i) > 0

    def test_smt_gain_is_sublinear(self):
        """Two logical CPUs per core help, but far less than a second
        core would (P4-era HT gave ~15-30%)."""
        results = {}
        for ht in (False, True):
            machine = Machine(n_cpus=2, seed=3, hyperthreading=ht)
            stack = NetworkStack(machine, NetParams(), n_connections=8,
                                 mode="tx", message_size=65536)
            workload = TtcpWorkload(machine, stack, 65536)
            tasks = workload.spawn_all()
            apply_affinity(machine, stack, tasks, "full")
            machine.start()
            machine.run_for(10 * MS)
            machine.reset_measurement()
            machine.run_for(12 * MS)
            results[ht] = workload.throughput_gbps(
                machine.window_cycles, machine.hz
            )
        gain = results[True] / results[False] - 1.0
        assert 0.05 < gain < 0.6
