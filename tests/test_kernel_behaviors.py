"""Behavioural tests for subtle kernel-model mechanisms.

These pin down the machinery the calibration story depends on:
ksoftirqd fairness, backdated spin accounting, load-gated wake
steering, timeslice preemption, and IPI bookkeeping.
"""

import pytest

from repro.kernel.machine import Machine
from repro.kernel.softirq import NET_RX_SOFTIRQ
from repro.kernel.task import Task, WaitQueue

MS = 2_000_000


@pytest.fixture
def machine():
    return Machine(n_cpus=2, seed=17)


def spec(machine, name="worker", bin="engine"):
    return machine.functions.register(name, bin, branch_frac=0.1)


class TestSoftirqFairness:
    def test_task_progresses_under_interrupt_storm(self, machine):
        """A continuous softirq stream must not starve the CPU's tasks
        (ksoftirqd semantics)."""
        fn = spec(machine)
        progress = [0]

        def action(ctx):
            ctx.charge(spec(machine, "storm_action", "driver"), 2000)
            # Re-raise: there is always more softirq work.
            ctx.raise_softirq(NET_RX_SOFTIRQ)
            return
            yield  # pragma: no cover

        machine.softirqs.register(NET_RX_SOFTIRQ, action)

        def body(ctx):
            while True:
                ctx.charge(fn, 1000)
                progress[0] += 1
                yield ("preempt_check",)

        machine.spawn(Task("victim", body, cpus_allowed=0b01), cpu_index=0)
        machine.start()
        machine.raise_softirq(0, NET_RX_SOFTIRQ)
        machine.run_for(10 * MS)
        assert progress[0] > 100  # task keeps running despite the storm
        assert machine.softirqs.executed[NET_RX_SOFTIRQ] > 100


class TestBackdatedSpin:
    def test_lagging_cpu_observes_contention(self, machine):
        """A lock held and released within one atomic host stretch must
        still look contended to a CPU whose clock lagged the hold."""
        fn = spec(machine)
        lock = machine.new_lock("backdate")

        def fast(ctx):
            yield ("spin", lock)
            ctx.charge(fn, 90_000)  # hold ~30k+ cycles, release inline
            ctx.unlock(lock)

        def slow(ctx):
            ctx.charge(fn, 6_000)  # arrives (in sim time) mid-hold
            yield ("spin", lock)
            ctx.unlock(lock)

        machine.spawn(Task("fast", fast, cpus_allowed=0b01), cpu_index=0)
        machine.spawn(Task("slow", slow, cpus_allowed=0b10), cpu_index=1)
        machine.start()
        machine.run_for(5 * MS)
        assert lock.contended_acquisitions == 1
        assert lock.total_spin_cycles > 0


class TestWakeSteeringLoadGate:
    def test_saturated_waker_repels_steering(self, machine):
        machine.scheduler.cpu_load[0] = 1.0
        machine.scheduler.cpu_load[1] = 0.2
        task = Task("t", lambda ctx: iter(()))
        task.cpus_allowed = 0b11
        task.prev_cpu = 1
        target = machine.scheduler.choose_wake_cpu(task, waker_cpu=0)
        assert target == 1  # stays on its previous CPU

    def test_idle_waker_attracts(self, machine):
        machine.scheduler.cpu_load[0] = 0.2
        task = Task("t", lambda ctx: iter(()))
        task.cpus_allowed = 0b11
        task.prev_cpu = 1
        target = machine.scheduler.choose_wake_cpu(task, waker_cpu=0)
        assert target == 0


class TestTimeslice:
    def test_hog_rotation(self, machine):
        """Equal-priority CPU hogs share via timeslice expiry."""
        fn = spec(machine)
        counts = {"a": 0, "b": 0}

        def hog(name):
            def body(ctx):
                while True:
                    ctx.charge(fn, 2000)
                    counts[name] += 1
                    yield ("preempt_check",)
            return body

        machine.spawn(Task("a", hog("a"), cpus_allowed=0b01), cpu_index=0)
        machine.spawn(Task("b", hog("b"), cpus_allowed=0b01), cpu_index=0)
        machine.start()
        machine.run_for(50 * MS)  # several 10ms timeslices
        assert counts["a"] > 0 and counts["b"] > 0
        ratio = counts["a"] / float(counts["b"])
        assert 0.4 < ratio < 2.6


class TestIpiBookkeeping:
    def test_remote_preempting_wake_sends_ipi(self, machine):
        fn = spec(machine)
        wq = WaitQueue("wq")

        def sleeper(ctx):
            ctx.charge(fn, 100)
            yield ("block", wq)
            ctx.charge(fn, 100)

        def hog(ctx):
            while True:
                ctx.charge(fn, 2000)
                yield ("preempt_check",)

        def waker(ctx):
            # Run long enough that the hog exceeds the preemption
            # threshold, then wake the sleeper (whose prev CPU hosts
            # the hog).
            ctx.charge(fn, 300_000)
            yield ("preempt_check",)
            ctx.wake_up(wq)
            yield ("preempt_check",)

        machine.spawn(Task("sleeper", sleeper, cpus_allowed=0b01),
                      cpu_index=0)
        machine.spawn(Task("hog", hog, cpus_allowed=0b01), cpu_index=0)
        machine.spawn(Task("waker", waker, cpus_allowed=0b10), cpu_index=1)
        machine.start()
        machine.run_for(10 * MS)
        assert machine.procstat.total_ipis(0) >= 1

    def test_ipi_charges_clear_on_target(self, machine):
        from repro.cpu.events import MACHINE_CLEARS

        before = machine.cpus[0].totals[MACHINE_CLEARS]
        machine.start()
        machine._send_ipi(0, at=machine.engine.now)
        machine.run_for(1 * MS)
        delta = machine.cpus[0].totals[MACHINE_CLEARS] - before
        assert delta >= machine.costs.clears_counted_per_ipi
