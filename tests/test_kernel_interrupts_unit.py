"""Unit tests for IRQ lines and IO-APIC routing."""

import pytest

from repro.kernel.interrupts import IoApic, IrqLine


def line(vector, mask=0x1):
    return IrqLine(vector, "dev%x" % vector, lambda ctx: None,
                   smp_affinity=mask)


class TestIrqLine:
    def test_default_affinity_is_cpu0(self):
        assert line(0x19).smp_affinity == 0x1

    def test_set_affinity_validates(self):
        irq = line(0x19)
        irq.set_affinity(0b10)
        assert irq.smp_affinity == 0b10
        with pytest.raises(ValueError):
            irq.set_affinity(0)


class TestIoApicRouting:
    def test_routes_to_lowest_allowed(self):
        apic = IoApic(4)
        apic.register(line(0x19, mask=0b1100))
        assert apic.route(0x19) == 2

    def test_default_routes_to_cpu0(self):
        apic = IoApic(2)
        apic.register(line(0x19))
        assert apic.route(0x19) == 0

    def test_mask_clipped_to_online_cpus(self):
        apic = IoApic(2)
        apic.register(line(0x19, mask=0b100))  # CPU2 does not exist
        with pytest.raises(RuntimeError):
            apic.route(0x19)

    def test_duplicate_vector_rejected(self):
        apic = IoApic(2)
        apic.register(line(0x19))
        with pytest.raises(ValueError):
            apic.register(line(0x19))

    def test_route_all(self):
        apic = IoApic(2)
        for v in (0x19, 0x1A):
            apic.register(line(v))
        apic.route_all(1)
        assert apic.route(0x19) == 1
        assert apic.route(0x1A) == 1


class TestDistribute:
    def test_paper_split_two_cpus(self):
        """Eight NICs over two CPUs: the paper's 4+4 block split."""
        apic = IoApic(2)
        vectors = [0x19, 0x1A, 0x1B, 0x1D, 0x23, 0x24, 0x25, 0x27]
        for v in vectors:
            apic.register(line(v))
        assignment = apic.distribute(vectors)
        assert [assignment[v] for v in sorted(vectors)] == [
            0, 0, 0, 0, 1, 1, 1, 1
        ]

    def test_four_cpus(self):
        apic = IoApic(4)
        vectors = list(range(0x10, 0x18))
        for v in vectors:
            apic.register(line(v))
        assignment = apic.distribute(vectors)
        assert [assignment[v] for v in sorted(vectors)] == [
            0, 0, 1, 1, 2, 2, 3, 3
        ]

    def test_uneven_counts(self):
        apic = IoApic(2)
        vectors = [1, 2, 3]
        for v in vectors:
            apic.register(line(v))
        assignment = apic.distribute(vectors)
        assert sorted(assignment.values()) == [0, 0, 1]
