"""Integration tests for the machine: tasks, interrupts, locks, IPIs."""

import pytest

from repro.cpu.events import MACHINE_CLEARS
from repro.kernel.interrupts import IrqLine
from repro.kernel.machine import Machine
from repro.kernel.task import TASK_DEAD, Task, WaitQueue
from repro.kernel.timers import KernelTimer
from repro.kernel.softirq import NET_RX_SOFTIRQ

MS = 2_000_000  # cycles per millisecond at 2 GHz


@pytest.fixture
def machine():
    return Machine(n_cpus=2, seed=7)


def spec(machine, name="worker", bin="engine"):
    return machine.functions.register(name, bin, branch_frac=0.1)


class TestTaskExecution:
    def test_task_runs_and_exits(self, machine):
        fn = spec(machine)
        done = []

        def body(ctx):
            for _ in range(5):
                ctx.charge(fn, 300)
                yield ("preempt_check",)
            done.append(True)

        machine.spawn(Task("t", body))
        machine.start()
        machine.run_for(5 * MS)
        assert done == [True]
        assert machine.tasks[0].state == TASK_DEAD

    def test_two_tasks_share_cpu(self, machine):
        fn = spec(machine)
        progress = {"a": 0, "b": 0}

        def body(name):
            def gen(ctx):
                for _ in range(50):
                    ctx.charge(fn, 500)
                    progress[name] += 1
                    yield ("preempt_check",)
            return gen

        machine.spawn(Task("a", body("a"), cpus_allowed=0b01), cpu_index=0)
        machine.spawn(Task("b", body("b"), cpus_allowed=0b01), cpu_index=0)
        machine.start()
        machine.run_for(20 * MS)
        assert progress["a"] == 50 and progress["b"] == 50

    def test_voluntary_resched_round_robins(self, machine):
        fn = spec(machine)
        order = []

        def body(name):
            def gen(ctx):
                for _ in range(3):
                    ctx.charge(fn, 100)
                    order.append(name)
                    yield ("resched",)
            return gen

        machine.spawn(Task("a", body("a"), cpus_allowed=0b01), cpu_index=0)
        machine.spawn(Task("b", body("b"), cpus_allowed=0b01), cpu_index=0)
        machine.start()
        machine.run_for(5 * MS)
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_idle_pull_spreads_tasks(self, machine):
        fn = spec(machine)

        def body(ctx):
            for _ in range(200):
                ctx.charge(fn, 2000)
                yield ("preempt_check",)

        for i in range(2):
            machine.spawn(Task("t%d" % i, body), cpu_index=0)
        machine.start()
        machine.run_for(10 * MS)
        # CPU1 idle-pulled one of the two tasks.
        assert machine.cpus[1].busy_cycles > 0


class TestBlockingAndWakeups:
    def test_block_until_woken(self, machine):
        fn = spec(machine)
        wq = WaitQueue("test")
        log = []

        def sleeper(ctx):
            ctx.charge(fn, 100)
            log.append("sleeping")
            yield ("block", wq)
            log.append("woken")

        def waker(ctx):
            ctx.charge(fn, 50_000)  # let the sleeper block first
            yield ("preempt_check",)
            ctx.wake_up(wq)
            log.append("woke-it")
            yield ("preempt_check",)

        machine.spawn(Task("sleeper", sleeper, cpus_allowed=0b01), cpu_index=0)
        machine.spawn(Task("waker", waker, cpus_allowed=0b10), cpu_index=1)
        machine.start()
        machine.run_for(10 * MS)
        assert log == ["sleeping", "woke-it", "woken"]

    def test_block_condition_avoids_lost_wakeup(self, machine):
        fn = spec(machine)
        flag = {"ready": True}
        log = []

        def sleeper(ctx):
            ctx.charge(fn, 100)
            yield ("block", WaitQueue("never"), lambda: flag["ready"])
            log.append("did-not-sleep")

        machine.spawn(Task("s", sleeper), cpu_index=0)
        machine.start()
        machine.run_for(MS)
        assert log == ["did-not-sleep"]

    def test_cross_cpu_wake_of_idle_cpu_sends_ipi(self, machine):
        fn = spec(machine)
        wq = WaitQueue("wq")

        def sleeper(ctx):
            ctx.charge(fn, 100)
            yield ("block", wq)
            ctx.charge(fn, 100)

        def waker(ctx):
            ctx.charge(fn, 100_000)
            yield ("preempt_check",)
            ctx.wake_up(wq)
            yield ("preempt_check",)

        machine.spawn(Task("sleeper", sleeper, cpus_allowed=0b01), cpu_index=0)
        machine.spawn(Task("waker", waker, cpus_allowed=0b10), cpu_index=1)
        machine.start()
        machine.run_for(10 * MS)
        assert machine.ipis_sent >= 1
        assert machine.procstat.total_ipis(0) >= 1
        # The IPI's machine clear was counted on CPU0.
        assert machine.cpus[0].totals[MACHINE_CLEARS] > 0


class TestSpinlocks:
    def test_uncontended_lock_cheap(self, machine):
        fn = spec(machine)
        lock = machine.new_lock("sk")

        def body(ctx):
            ctx.charge(fn, 100)
            yield ("spin", lock)
            ctx.charge(fn, 100)
            ctx.unlock(lock)

        machine.spawn(Task("t", body), cpu_index=0)
        machine.start()
        machine.run_for(MS)
        assert lock.acquisitions == 1
        assert lock.contended_acquisitions == 0
        assert lock.total_spin_cycles == 0

    def test_contended_lock_spins(self, machine):
        fn = spec(machine)
        lock = machine.new_lock("sk")
        order = []

        def holder(ctx):
            yield ("spin", lock)
            order.append("held")
            ctx.charge(fn, 60_000)  # hold ~20k+ cycles
            ctx.unlock(lock)
            order.append("released")

        def contender(ctx):
            ctx.charge(fn, 3000)  # arrive second
            yield ("spin", lock)
            order.append("acquired")
            ctx.unlock(lock)

        machine.spawn(Task("h", holder, cpus_allowed=0b01), cpu_index=0)
        machine.spawn(Task("c", contender, cpus_allowed=0b10), cpu_index=1)
        machine.start()
        machine.run_for(10 * MS)
        assert order == ["held", "released", "acquired"]
        assert lock.contended_acquisitions == 1
        assert lock.total_spin_cycles > 0

    def test_blocking_with_lock_held_raises(self, machine):
        lock = machine.new_lock("sk")
        wq = WaitQueue("wq")

        def bad(ctx):
            yield ("spin", lock)
            yield ("block", wq)

        machine.spawn(Task("bad", bad), cpu_index=0)
        machine.start()
        with pytest.raises(RuntimeError, match="locks held"):
            machine.run_for(MS)


class TestInterrupts:
    def test_irq_delivered_to_affinity_cpu(self, machine):
        hits = []

        def handler(ctx):
            ctx.charge(machine.functions.get("IRQ0x19_interrupt"), 200)
            hits.append(ctx.cpu_index)

        line = machine.register_irq(IrqLine(0x19, "eth0", handler))
        machine.start()
        machine.engine.schedule_at(1000, lambda: machine.raise_irq(0x19))
        machine.run_for(MS)
        assert hits == [0]
        assert machine.procstat.deliveries(0x19) == [1, 0]

        line.set_affinity(0b10)
        machine.engine.schedule_at(
            machine.engine.now + 1000, lambda: machine.raise_irq(0x19)
        )
        machine.run_for(MS)
        assert hits == [0, 1]
        assert machine.procstat.deliveries(0x19) == [1, 1]

    def test_irq_machine_clear_split_between_victim_and_handler(self, machine):
        """Device-IRQ clears skid: half to the interrupted code, half
        to the handler entry (the paper's Table 4 shows both)."""

        def handler(ctx):
            pass

        machine.register_irq(IrqLine(0x20, "eth1", handler))
        machine.start()
        machine.engine.schedule_at(1000, lambda: machine.raise_irq(0x20))
        machine.run_for(MS)
        per_fn = machine.accounting.per_function(include_idle=True)
        counted = machine.costs.clears_counted_per_irq
        handler_clears = per_fn["IRQ0x20_interrupt"][1][MACHINE_CLEARS]
        assert handler_clears == counted - counted // 2
        total = sum(v[1][MACHINE_CLEARS] for v in per_fn.values())
        # The other half went to whatever was interrupted (idle here),
        # plus tick clears.
        assert total >= counted

    def test_irq_interrupts_running_task(self, machine):
        fn = spec(machine)
        times = {}

        def handler(ctx):
            times["irq"] = ctx.now

        machine.register_irq(IrqLine(0x21, "eth2", handler))

        def body(ctx):
            for _ in range(1000):
                ctx.charge(fn, 1000)
                yield ("preempt_check",)

        machine.spawn(Task("busy", body, cpus_allowed=0b01), cpu_index=0)
        machine.start()
        machine.engine.schedule_at(100_000, lambda: machine.raise_irq(0x21))
        machine.run_for(2 * MS)
        # Delivered promptly (within a handful of function executions).
        assert 100_000 <= times["irq"] < 200_000


class TestSoftirqs:
    def test_softirq_runs_on_raising_cpu(self, machine):
        runs = []

        def action(ctx):
            ctx.charge(spec(machine, "net_rx_action", "driver"), 400)
            runs.append(ctx.cpu_index)
            yield ("preempt_check",) if False else None  # make it a generator
            return

        def gen_action(ctx):
            ctx.charge(spec(machine, "net_rx_action", "driver"), 400)
            runs.append(ctx.cpu_index)
            return
            yield  # pragma: no cover

        machine.softirqs.register(NET_RX_SOFTIRQ, gen_action)

        def handler(ctx):
            ctx.raise_softirq(NET_RX_SOFTIRQ)

        line = machine.register_irq(IrqLine(0x22, "eth3", handler))
        line.set_affinity(0b10)
        machine.start()
        machine.engine.schedule_at(1000, lambda: machine.raise_irq(0x22))
        machine.run_for(MS)
        assert runs == [1]


class TestTimers:
    def test_timer_fires_after_delay(self, machine):
        fired = []

        def handler(ctx):
            fired.append(ctx.now)
            return
            yield  # pragma: no cover

        timer = KernelTimer("test", handler)

        def body(ctx):
            ctx.charge(spec(machine), 100)
            ctx.add_timer(timer, 3 * MS)
            yield ("preempt_check",)

        machine.spawn(Task("t", body), cpu_index=0)
        machine.start()
        machine.run_for(10 * MS)
        assert len(fired) == 1
        assert fired[0] >= 3 * MS
        assert timer.fired == 1

    def test_cancelled_timer_does_not_fire(self, machine):
        fired = []

        def handler(ctx):
            fired.append(1)
            return
            yield  # pragma: no cover

        timer = KernelTimer("test", handler)

        def body(ctx):
            ctx.charge(spec(machine), 100)
            ctx.add_timer(timer, 3 * MS)
            yield ("preempt_check",)
            ctx.charge(spec(machine), 100)
            ctx.del_timer(timer)
            yield ("preempt_check",)

        machine.spawn(Task("t", body), cpu_index=0)
        machine.start()
        machine.run_for(10 * MS)
        assert fired == []
        assert timer.cancelled == 1


class TestTicksAndMeasurement:
    def test_ticks_happen_on_both_cpus(self, machine):
        machine.start()
        machine.run_for(10 * MS)
        assert machine.states[0].tick_count >= 9
        assert machine.states[1].tick_count >= 9

    def test_reset_measurement_zeroes_counters(self, machine):
        fn = spec(machine)

        def body(ctx):
            for _ in range(10_000):
                ctx.charge(fn, 1000)
                yield ("preempt_check",)

        machine.spawn(Task("t", body), cpu_index=0)
        machine.start()
        machine.run_for(5 * MS)
        machine.reset_measurement()
        assert machine.cpus[0].busy_cycles == 0
        assert machine.accounting.per_function() == {}
        machine.run_for(5 * MS)
        assert machine.cpus[0].busy_cycles > 0
        assert machine.window_cycles == pytest.approx(5 * MS, rel=0.01)

    def test_utilization_bounds(self, machine):
        fn = spec(machine)

        def body(ctx):
            while True:
                ctx.charge(fn, 1000)
                yield ("preempt_check",)

        machine.spawn(Task("hog", body, cpus_allowed=0b01), cpu_index=0)
        machine.start()
        machine.run_for(2 * MS)
        machine.reset_measurement()
        machine.run_for(10 * MS)
        assert machine.utilization(0) > 0.95
        assert machine.utilization(1) < 0.2
