"""Unit tests for scheduler policy (pure, no machine)."""

import pytest

from repro.kernel.scheduler import Scheduler, SchedulerParams
from repro.kernel.task import Task, full_mask


def make_task(name="t", mask=None, prev=0):
    task = Task(name, lambda ctx: iter(()), cpus_allowed=mask or full_mask(2))
    task.prev_cpu = prev
    return task


class TestWakePlacement:
    def test_prefers_prev_cpu_when_not_busier(self):
        sched = Scheduler(2)
        task = make_task(prev=1)
        decision = sched.wake(task, waker_cpu=1, now=0)
        assert decision.target_cpu == 1
        assert not decision.migrated

    def test_steers_to_waker_on_tie(self):
        """The mechanism behind 'IRQ affinity induces process affinity'."""
        sched = Scheduler(2)
        task = make_task(prev=1)
        decision = sched.wake(task, waker_cpu=0, now=0)
        assert decision.target_cpu == 0
        assert decision.migrated

    def test_stays_on_prev_when_waker_busier(self):
        sched = Scheduler(2)
        for i in range(3):
            sched.enqueue(make_task("busy%d" % i), 0)
        task = make_task(prev=1)
        decision = sched.wake(task, waker_cpu=0, now=0)
        assert decision.target_cpu == 1

    def test_respects_affinity_mask(self):
        sched = Scheduler(2)
        task = make_task(mask=0b10, prev=1)
        decision = sched.wake(task, waker_cpu=0, now=0)
        assert decision.target_cpu == 1

    def test_mask_excludes_prev(self):
        sched = Scheduler(2)
        task = make_task(mask=0b01, prev=1)
        decision = sched.wake(task, waker_cpu=0, now=0)
        assert decision.target_cpu == 0

    def test_no_steering_param(self):
        sched = Scheduler(2, SchedulerParams(wake_steering=False))
        task = make_task(prev=1)
        assert sched.wake(task, waker_cpu=0, now=0).target_cpu == 1

    def test_preempt_when_current_ran_long(self):
        params = SchedulerParams(preempt_threshold_cycles=1000)
        sched = Scheduler(2, params)
        hog = make_task("hog")
        hog.last_dispatch = 0
        sched.current[0] = hog
        task = make_task(prev=0)
        assert sched.wake(task, waker_cpu=0, now=5000).preempt
        assert not sched.wake(make_task(prev=0), waker_cpu=0, now=5500).preempt or True
        # A fresh dispatch is protected:
        hog.last_dispatch = 5000
        assert not sched.wake(make_task(prev=0), waker_cpu=0, now=5500).preempt

    def test_remote_wakeup_counted(self):
        sched = Scheduler(2)
        task = make_task(prev=1)
        sched.enqueue(make_task("w"), 0)  # make CPU0 busier so prev wins
        sched.wake(task, waker_cpu=0, now=0)
        assert sched.remote_wakeups == 1


class TestQueues:
    def test_enqueue_respects_mask(self):
        sched = Scheduler(2)
        with pytest.raises(ValueError):
            sched.enqueue(make_task(mask=0b10), 0)

    def test_queue_len_counts_running(self):
        sched = Scheduler(2)
        sched.current[0] = make_task()
        sched.enqueue(make_task(), 0)
        assert sched.queue_len(0) == 2


class TestStealing:
    def test_idle_pull_from_busiest(self):
        sched = Scheduler(2)
        for i in range(3):
            sched.enqueue(make_task("t%d" % i), 0)
        task = sched.pick_next(1)
        assert task is not None
        assert task.name == "t2"  # coldest: tail of the queue
        assert sched.steals == 1
        assert task.migrations == 1

    def test_steal_respects_affinity(self):
        sched = Scheduler(2)
        sched.enqueue(make_task("pinned", mask=0b01), 0)
        assert sched.pick_next(1) is None

    def test_no_steal_when_disabled(self):
        sched = Scheduler(2, SchedulerParams(idle_pull=False))
        sched.enqueue(make_task(), 0)
        assert sched.pick_next(1) is None

    def test_own_queue_first(self):
        sched = Scheduler(2)
        mine = make_task("mine")
        sched.enqueue(mine, 1)
        sched.enqueue(make_task("theirs"), 0)
        assert sched.pick_next(1) is mine


class TestBalance:
    def test_balance_moves_half_excess(self):
        sched = Scheduler(2)
        for i in range(4):
            sched.enqueue(make_task("t%d" % i), 0)
        moved = sched.balance(1)
        assert moved == 2
        assert len(sched.runqueues[1]) == 2

    def test_balance_noop_when_even(self):
        sched = Scheduler(2)
        sched.enqueue(make_task(), 0)
        sched.enqueue(make_task(), 1)
        assert sched.balance(1) == 0

    def test_balance_respects_affinity(self):
        sched = Scheduler(2)
        for i in range(4):
            sched.enqueue(make_task("p%d" % i, mask=0b01), 0)
        assert sched.balance(1) == 0


class TestAffinityChange:
    def test_requeues_misplaced_task(self):
        sched = Scheduler(2)
        task = make_task()
        sched.enqueue(task, 0)
        moved_to = sched.set_affinity(task, 0b10)
        assert moved_to == 1
        assert task in sched.runqueues[1]

    def test_noop_when_still_allowed(self):
        sched = Scheduler(2)
        task = make_task()
        sched.enqueue(task, 0)
        assert sched.set_affinity(task, 0b01) is None

    def test_rejects_empty_mask(self):
        sched = Scheduler(2)
        task = make_task()
        with pytest.raises(ValueError):
            sched.set_affinity(task, 0)
