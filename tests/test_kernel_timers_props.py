"""Property tests for the timer wheel and slab interplay."""

from hypothesis import given, settings, strategies as st

from repro.kernel.timers import KernelTimer, TimerWheel


def make_timer(i):
    return KernelTimer("t%d" % i, lambda ctx: iter(()))


class TestTimerWheelProperties:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=1000),  # expiry
                  st.booleans()),                             # cancel?
        max_size=40,
    ), st.integers(min_value=0, max_value=1200))
    def test_expiry_semantics(self, entries, now):
        wheel = TimerWheel(0)
        timers = []
        for i, (expiry, cancel) in enumerate(entries):
            timer = make_timer(i)
            wheel.add(timer, expiry)
            timers.append((timer, expiry, cancel))
        for timer, _, cancel in timers:
            if cancel:
                wheel.remove(timer)
        due = wheel.expire(now)
        # Exactly the non-cancelled timers with expiry <= now fire.
        expected = {t.name for t, e, c in timers if not c and e <= now}
        assert {t.name for t in due} == expected
        # Fired and cancelled timers are detached.
        for timer, expiry, cancel in timers:
            if cancel or expiry <= now:
                assert not timer.pending
            else:
                assert timer.pending
        # Nothing fires twice.
        assert wheel.expire(now) == []

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=500),
                    min_size=1, max_size=20))
    def test_next_expiry_is_minimum(self, expiries):
        wheel = TimerWheel(0)
        for i, expiry in enumerate(expiries):
            wheel.add(make_timer(i), expiry)
        assert wheel.next_expiry() == min(expiries)

    def test_double_add_rejected(self):
        wheel = TimerWheel(0)
        timer = make_timer(0)
        wheel.add(timer, 10)
        try:
            wheel.add(timer, 20)
        except RuntimeError:
            pass
        else:
            raise AssertionError("double add allowed")

    def test_counters(self):
        wheel = TimerWheel(0)
        timer = make_timer(0)
        wheel.add(timer, 10)
        wheel.remove(timer)
        wheel.add(timer, 10)
        wheel.expire(50)
        assert timer.armed == 2
        assert timer.cancelled == 1
        assert timer.fired == 1
