"""Fault injection: loss recovery on the transmit path.

The paper's testbed is loss-free, but TCP's "corner cases abound"
(section 2) -- the stack implements duplicate-ACK fast retransmit and
RTO-based recovery, exercised here by dropping every Nth transmitted
frame in the NIC.
"""

import pytest

from repro.apps.ttcp import TtcpWorkload
from repro.kernel.machine import Machine
from repro.net.params import NetParams
from repro.net.stack import NetworkStack

MS = 2_000_000


def build_lossy(drop_every_n, n=2, size=65536, seed=21):
    machine = Machine(n_cpus=2, seed=seed)
    # Short RTO so timeout recovery fits in a test-sized window.
    stack = NetworkStack(machine, NetParams(rto_ms=10), n_connections=n,
                         mode="tx", message_size=size)
    workload = TtcpWorkload(machine, stack, size)
    workload.spawn_all()
    for nic in stack.nics:
        nic.drop_every_n = drop_every_n
    machine.start()
    return machine, stack, workload


class TestLossRecovery:
    @pytest.fixture(scope="class")
    def lossy(self):
        machine, stack, workload = build_lossy(50)
        machine.run_for(40 * MS)
        return machine, stack, workload

    def test_frames_were_dropped(self, lossy):
        _, stack, _ = lossy
        assert sum(n.tx_drops for n in stack.nics) > 0

    def test_progress_despite_loss(self, lossy):
        _, stack, workload = lossy
        assert workload.total_bytes() > 0
        for conn in stack.connections:
            assert conn.sock.snd_una > 0

    def test_recovery_mechanisms_fired(self, lossy):
        _, stack, _ = lossy
        recoveries = sum(
            c.fast_retransmits + c.rto_fires for c in stack.connections
        )
        assert recoveries > 0

    def test_retransmissions_cover_drops(self, lossy):
        _, stack, _ = lossy
        drops = sum(n.tx_drops for n in stack.nics)
        retrans = sum(c.retransmitted_segments for c in stack.connections)
        assert retrans >= drops * 0.5  # each drop eventually resent

    def test_peer_stream_is_gapless(self, lossy):
        """The sink's cumulative rcv_nxt implies every byte below it
        arrived: loss recovery preserved stream integrity."""
        _, stack, _ = lossy
        for conn in stack.connections:
            assert conn.peer.rcv_nxt <= conn.sock.snd_nxt
            # And the sender's window view cannot run past the sink.
            assert conn.sock.snd_una <= conn.peer.rcv_nxt

    def test_dup_acks_generated(self, lossy):
        _, stack, _ = lossy
        assert sum(c.peer.dup_acks_sent for c in stack.connections) > 0


class TestLossRateSensitivity:
    def test_more_loss_less_throughput(self):
        results = {}
        for drop in (0, 20):
            machine, stack, workload = build_lossy(drop, n=2, seed=22)
            machine.run_for(25 * MS)
            results[drop] = workload.total_bytes()
        assert results[20] < results[0]

    def test_lossless_run_never_retransmits(self):
        machine, stack, workload = build_lossy(0, n=2)
        machine.run_for(15 * MS)
        assert sum(c.retransmitted_segments for c in stack.connections) == 0
        assert sum(c.fast_retransmits for c in stack.connections) == 0
