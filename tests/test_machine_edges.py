"""Edge-case tests for the machine: dispatch, TLB flush, idle paths."""

import pytest

from repro.kernel.machine import Machine
from repro.kernel.task import TASK_DEAD, Task, WaitQueue
from repro.mem.layout import PAGE_SIZE

MS = 2_000_000


@pytest.fixture
def machine():
    return Machine(n_cpus=2, seed=23)


def spec(machine, name="worker", bin="engine"):
    return machine.functions.register(name, bin, branch_frac=0.05)


class TestContextSwitchTlb:
    def test_switch_flushes_user_translations_only(self, machine):
        fn = spec(machine)
        user_buf = machine.space.alloc_page_aligned("ubuf", PAGE_SIZE * 2,
                                                    zone="user")
        kernel_buf = machine.space.alloc("kbuf", PAGE_SIZE)
        phases = []

        def body_a(ctx):
            ctx.charge(fn, 50, reads=[(user_buf.addr, PAGE_SIZE * 2),
                                      (kernel_buf.addr, 256)])
            phases.append("a-ran")
            yield ("resched",)
            phases.append("a-again")

        def body_b(ctx):
            ctx.charge(fn, 50)
            phases.append("b-ran")
            yield ("resched",)

        machine.spawn(Task("a", body_a, cpus_allowed=0b01), cpu_index=0)
        machine.spawn(Task("b", body_b, cpus_allowed=0b01), cpu_index=0)
        machine.start()
        machine.run_for(2 * MS)
        assert "b-ran" in phases
        dtlb_pages = machine.cpus[0].dtlb.resident_pages()
        # After switching to b, a's user pages are flushed...
        assert user_buf.addr // PAGE_SIZE not in dtlb_pages
        # ...while kernel (global) translations survive.
        assert kernel_buf.addr // PAGE_SIZE in dtlb_pages

    def test_redispatch_same_task_skips_flush(self, machine):
        fn = spec(machine)
        user_buf = machine.space.alloc_page_aligned("ubuf", PAGE_SIZE,
                                                    zone="user")
        misses = []

        def body(ctx):
            for _ in range(3):
                walks_before = ctx.cpu.dtlb.walks
                ctx.charge(fn, 50, reads=[(user_buf.addr, 64)])
                misses.append(ctx.cpu.dtlb.walks - walks_before)
                yield ("resched",)  # only task: re-dispatched, no switch

        machine.spawn(Task("solo", body, cpus_allowed=0b01), cpu_index=0)
        machine.start()
        machine.run_for(2 * MS)
        assert misses[0] == 1      # first touch walks
        assert misses[1:] == [0, 0]  # no flush on same-task redispatch


class TestIdlePaths:
    def test_machine_idles_with_no_work(self, machine):
        machine.start()
        machine.run_for(5 * MS)
        for i in range(2):
            assert machine.utilization(i) < 0.02  # only tick work
            assert machine.states[i].halted

    def test_task_exit_leaves_cpu_idle(self, machine):
        fn = spec(machine)

        def body(ctx):
            ctx.charge(fn, 100)
            yield ("preempt_check",)

        task = machine.spawn(Task("oneshot", body), cpu_index=0)
        machine.start()
        machine.run_for(3 * MS)
        assert task.state == TASK_DEAD
        assert machine.states[0].halted

    def test_wake_unhalts_idle_cpu(self, machine):
        fn = spec(machine)
        wq = WaitQueue("w")
        log = []

        def sleeper(ctx):
            yield ("block", wq)
            ctx.charge(fn, 100)
            log.append("woke at %d" % ctx.now)

        def late_waker(ctx):
            ctx.charge(fn, 100)
            yield ("preempt_check",)
            ctx.wake_up(wq)

        machine.spawn(Task("sleeper", sleeper, cpus_allowed=0b01),
                      cpu_index=0)
        machine.start()
        machine.run_for(2 * MS)  # CPU0 idles with the sleeper blocked
        assert machine.states[0].halted
        machine.spawn(Task("waker", late_waker, cpus_allowed=0b10),
                      cpu_index=1)
        machine.run_for(2 * MS)
        assert log, "sleeper never woke"


class TestMeasurementWindow:
    def test_window_cycles_tracks_reset(self, machine):
        machine.start()
        machine.run_for(3 * MS)
        machine.reset_measurement()
        machine.run_for(2 * MS)
        assert machine.window_cycles == pytest.approx(2 * MS, rel=0.01)

    def test_lock_stats_reset(self, machine):
        lock = machine.new_lock("resettable")
        lock.acquisitions = 5
        lock.total_spin_cycles = 100
        machine.reset_measurement()
        assert lock.acquisitions == 0
        assert lock.total_spin_cycles == 0


class TestSpawnValidation:
    def test_default_affinity_mask_allows_all(self, machine):
        task = machine.spawn(Task("t", lambda ctx: iter(())))
        assert task.cpus_allowed == 0b11

    def test_sched_setaffinity_moves_queued_task(self, machine):
        task = machine.spawn(Task("t", lambda ctx: iter(())), cpu_index=0)
        machine.sched_setaffinity(task, 0b10)
        assert task in machine.scheduler.runqueues[1]
