"""Unit tests for the address space and memory objects."""

import pytest

from repro.mem.layout import (
    CACHE_LINE,
    PAGE_SIZE,
    AddressSpace,
    line_span,
    page_span,
)


class TestLineSpan:
    def test_single_line(self):
        lines = list(line_span(0, 1))
        assert lines == [0]

    def test_straddles_boundary(self):
        lines = list(line_span(CACHE_LINE - 1, 2))
        assert lines == [0, 1]

    def test_exact_lines(self):
        lines = list(line_span(CACHE_LINE * 4, CACHE_LINE * 3))
        assert lines == [4, 5, 6]

    def test_zero_size(self):
        assert list(line_span(100, 0)) == []

    def test_page_span(self):
        pages = list(page_span(PAGE_SIZE - 1, 2))
        assert pages == [0, 1]


class TestAddressSpace:
    def test_allocations_do_not_overlap(self):
        space = AddressSpace()
        objs = [space.alloc("o%d" % i, 100) for i in range(50)]
        ranges = sorted((o.addr, o.end) for o in objs)
        for (a_start, a_end), (b_start, _) in zip(ranges, ranges[1:]):
            assert a_end <= b_start

    def test_line_alignment_default(self):
        space = AddressSpace()
        for i in range(10):
            obj = space.alloc("o%d" % i, 7)
            assert obj.addr % CACHE_LINE == 0

    def test_page_alignment(self):
        space = AddressSpace()
        space.alloc("pad", 100)
        obj = space.alloc_page_aligned("buf", 8192)
        assert obj.addr % PAGE_SIZE == 0

    def test_zones_are_disjoint(self):
        space = AddressSpace()
        text = space.alloc("fn", 512, zone="text")
        data = space.alloc("tcb", 512, zone="kernel")
        user = space.alloc("ubuf", 512, zone="user")
        spans = sorted([(text.addr, text.end), (data.addr, data.end),
                        (user.addr, user.end)])
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_rejects_bad_sizes_and_alignment(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.alloc("bad", 0)
        with pytest.raises(ValueError):
            space.alloc("bad", 10, align=3)
        with pytest.raises(KeyError):
            space.alloc("bad", 10, zone="nowhere")

    def test_total_allocated(self):
        space = AddressSpace()
        space.alloc("a", 64)
        space.alloc("b", 64)
        assert space.total_allocated() == 128
        assert space.total_allocated("kernel") >= 128


class TestMemoryObject:
    def test_field_bounds_checked(self):
        space = AddressSpace()
        obj = space.alloc("o", 100)
        addr, size = obj.field(10, 20)
        assert addr == obj.addr + 10 and size == 20
        with pytest.raises(ValueError):
            obj.field(90, 20)
        with pytest.raises(ValueError):
            obj.field(-1, 5)

    def test_lines_default_whole_object(self):
        space = AddressSpace()
        obj = space.alloc("o", CACHE_LINE * 3)
        assert len(list(obj.lines())) == 3
