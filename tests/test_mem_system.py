"""Unit tests for the coherence directory and DMA behaviour."""

from repro.cpu.events import LLC_MISSES
from repro.mem.layout import CACHE_LINE


def charge_read(rig, cpu, addr, size=CACHE_LINE):
    return rig.cpus[cpu].charge(rig.fn, 10, reads=[(addr, size)])


def charge_write(rig, cpu, addr, size=CACHE_LINE):
    return rig.cpus[cpu].charge(rig.fn, 10, writes=[(addr, size)])


class TestCoherence:
    def test_read_share_both_cpus(self, rig):
        obj = rig.space.alloc("shared", CACHE_LINE)
        charge_read(rig, 0, obj.addr)
        charge_read(rig, 1, obj.addr)
        line = obj.addr // CACHE_LINE
        assert rig.memsys.sharers_of(line) == 0b11
        assert rig.memsys.owner_of(line) == -1

    def test_write_invalidates_other_copy(self, rig):
        obj = rig.space.alloc("shared", CACHE_LINE)
        line = obj.addr // CACHE_LINE
        charge_read(rig, 0, obj.addr)
        charge_read(rig, 1, obj.addr)
        charge_write(rig, 1, obj.addr)
        assert rig.memsys.sharers_of(line) == 0b10
        assert rig.memsys.owner_of(line) == 1
        assert not rig.cpus[0].l1.probe(line)
        assert not rig.cpus[0].l2.probe(line)
        assert not rig.cpus[0].l3.probe(line)

    def test_reread_after_remote_write_misses(self, rig):
        """The producer/consumer bounce that affinity eliminates."""
        obj = rig.space.alloc("tcb", CACHE_LINE)
        charge_read(rig, 0, obj.addr)
        before = rig.cpus[0].totals[LLC_MISSES]
        charge_read(rig, 0, obj.addr)  # warm: no new miss
        assert rig.cpus[0].totals[LLC_MISSES] == before
        charge_write(rig, 1, obj.addr)
        charge_read(rig, 0, obj.addr)  # bounced back: miss again
        assert rig.cpus[0].totals[LLC_MISSES] == before + 1

    def test_dirty_read_is_cache_to_cache(self, rig):
        obj = rig.space.alloc("tcb", CACHE_LINE)
        charge_write(rig, 0, obj.addr)
        assert rig.memsys.c2c_transfers == 0
        charge_read(rig, 1, obj.addr)
        assert rig.memsys.c2c_transfers == 1
        # Ownership downgraded to shared.
        assert rig.memsys.owner_of(obj.addr // CACHE_LINE) == -1

    def test_repeated_local_writes_fast_path(self, rig):
        obj = rig.space.alloc("local", CACHE_LINE)
        charge_write(rig, 0, obj.addr)
        inv_before = rig.memsys.invalidations
        for _ in range(5):
            charge_write(rig, 0, obj.addr)
        assert rig.memsys.invalidations == inv_before


class TestDma:
    def test_dma_write_invalidates_all_cpus(self, rig):
        obj = rig.space.alloc("rxbuf", CACHE_LINE * 4)
        charge_read(rig, 0, obj.addr, obj.size)
        charge_read(rig, 1, obj.addr, obj.size)
        rig.memsys.dma_write(obj.addr, obj.size)
        for line in obj.lines():
            assert rig.memsys.sharers_of(line) == 0
            assert not rig.cpus[0].l3.probe(line)
            assert not rig.cpus[1].l3.probe(line)

    def test_read_after_dma_write_is_cold(self, rig):
        obj = rig.space.alloc("rxbuf", CACHE_LINE * 4)
        charge_read(rig, 0, obj.addr, obj.size)
        before = rig.cpus[0].totals[LLC_MISSES]
        rig.memsys.dma_write(obj.addr, obj.size)
        charge_read(rig, 0, obj.addr, obj.size)
        assert rig.cpus[0].totals[LLC_MISSES] == before + 4

    def test_dma_read_invalidates_by_default(self, rig):
        """On the paper's FSB chipsets, transmit DMA reads invalidate
        CPU copies: transmitted buffers are cold when reused."""
        obj = rig.space.alloc("txbuf", CACHE_LINE * 4)
        charge_write(rig, 0, obj.addr, obj.size)
        before = rig.cpus[0].totals[LLC_MISSES]
        rig.memsys.dma_read(obj.addr, obj.size)
        charge_read(rig, 0, obj.addr, obj.size)
        assert rig.cpus[0].totals[LLC_MISSES] == before + 4

    def test_dma_read_non_invalidating_mode(self, rig):
        """The modern-chipset behaviour is available as a switch."""
        rig.memsys.dma_read_invalidates = False
        obj = rig.space.alloc("txbuf", CACHE_LINE * 4)
        charge_write(rig, 0, obj.addr, obj.size)
        before = rig.cpus[0].totals[LLC_MISSES]
        rig.memsys.dma_read(obj.addr, obj.size)
        charge_read(rig, 0, obj.addr, obj.size)
        assert rig.cpus[0].totals[LLC_MISSES] == before

    def test_dma_read_downgrades_ownership(self, rig):
        obj = rig.space.alloc("txbuf", CACHE_LINE)
        charge_write(rig, 0, obj.addr)
        rig.memsys.dma_read(obj.addr, obj.size)
        assert rig.memsys.owner_of(obj.addr // CACHE_LINE) == -1

    def test_dma_counters(self, rig):
        obj = rig.space.alloc("buf", CACHE_LINE * 2)
        rig.memsys.dma_write(obj.addr, obj.size)
        rig.memsys.dma_read(obj.addr, obj.size)
        assert rig.memsys.dma_lines_written == 2
        assert rig.memsys.dma_lines_read == 2
