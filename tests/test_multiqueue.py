"""Multi-queue steering: Toeplitz RSS, Flow Director, HT-safe IRQs.

Covers the hardware steering subsystem end to end: the Toeplitz hash
against the published Microsoft RSS verification vectors, purity of
the RSS queue function (a steering decision depends on nothing but
the flow 4-tuple), the Flow Director retarget/reordering physics on a
contended machine, and the hyperthreading regression -- interrupt
steering must target physical-core representatives, never the second
logical sibling.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.modes import apply_affinity, spread_queue_irqs
from repro.kernel.interrupts import IrqRotator
from repro.kernel.machine import Machine
from repro.net.params import NetParams
from repro.net.rss import (
    FD_SAMPLE_RATE,
    FlowDirector,
    NicSteering,
    RssIndirection,
    flow_tuple_bytes,
    toeplitz_hash,
)
from repro.net.stack import QUEUE_VECTOR_BASE, NetworkStack


def _fast_config(mode, **overrides):
    kwargs = dict(
        direction="rx",
        message_size=16384,
        affinity=mode,
        n_connections=8,
        n_cpus=4,
        n_queues=4,
        warmup_ms=2,
        measure_ms=3,
        seed=7,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


class TestToeplitz:
    # The TCP/IPv4 rows of the Microsoft RSS verification suite: the
    # hash input is src_ip . dst_ip . src_port . dst_port with the
    # canonical 40-byte key.
    def test_ms_vector_1(self):
        data = (bytes((66, 9, 149, 187)) + bytes((161, 142, 100, 80))
                + (2794).to_bytes(2, "big") + (1766).to_bytes(2, "big"))
        assert toeplitz_hash(data) == 0x51CCC178

    def test_ms_vector_2(self):
        data = (bytes((199, 92, 111, 2)) + bytes((65, 69, 140, 83))
                + (14230).to_bytes(2, "big") + (4739).to_bytes(2, "big"))
        assert toeplitz_hash(data) == 0xC626B0EA

    def test_ms_vector_ip_only(self):
        data = bytes((66, 9, 149, 187)) + bytes((161, 142, 100, 80))
        assert toeplitz_hash(data) == 0x323E8FC2

    def test_rejects_oversized_input(self):
        with pytest.raises(ValueError):
            toeplitz_hash(bytes(37))


class TestRssPurity:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_queue_is_pure_function_of_flow(self, conn_id):
        """Two independent steering instances agree on every flow, and
        repeated lookups never drift: pure-RSS steering is a static
        function of the 4-tuple."""
        a = NicSteering(nic=None, n_queues=4)
        b = NicSteering(nic=None, n_queues=4)
        q = a.rss_queue_for(conn_id)
        assert b.rss_queue_for(conn_id) == q
        assert a.rss_queue_for(conn_id) == q
        assert q == RssIndirection(4).lookup(
            toeplitz_hash(flow_tuple_bytes(conn_id))
        )

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000),
           st.integers(min_value=1, max_value=16))
    def test_queue_in_range(self, conn_id, n_queues):
        assert 0 <= NicSteering(None, n_queues).rss_queue_for(conn_id) \
            < n_queues

    def test_flows_spread_across_queues(self):
        """The Knuth port spread defeats Toeplitz GF(2) linearity:
        consecutive conn_ids must not collapse onto one queue."""
        steering = NicSteering(None, 4)
        queues = {steering.rss_queue_for(c) for c in range(16)}
        assert len(queues) >= 3


class TestFlowDirector:
    def test_samples_every_nth_frame(self):
        fd = FlowDirector(n_queues=4)
        for _ in range(FD_SAMPLE_RATE - 1):
            assert fd.sample_tx(0, cpu_index=2) is None
        assert fd.sample_tx(0, cpu_index=2) == 2
        assert fd.samples == 1 and fd.retargets == 1
        assert fd.match(0) == 2

    def test_same_queue_is_not_a_retarget(self):
        fd = FlowDirector(n_queues=4)
        for _ in range(2 * FD_SAMPLE_RATE):
            fd.sample_tx(0, cpu_index=2)
        assert fd.samples == 2 and fd.retargets == 1

    def test_filter_overrides_rss(self):
        steering = NicSteering(None, 4)
        steering.enable_flow_director()
        rss_queue = steering.rss_queue_for(0)
        other = (rss_queue + 1) % 4
        steering.flow_director.filters[0] = other
        assert steering.queue_for(0) == other


class TestSteeredRuns:
    def test_rss_is_reorder_free(self):
        """Static steering keeps every flow on one queue: zero
        out-of-order segments, zero duplicate ACKs, frames spread
        across all queues."""
        result = run_experiment(_fast_config("rss"))
        steering = result.to_dict()["steering"]
        assert steering["flow_director"] is False
        assert steering["fd_samples"] == 0
        assert steering["reorder_depth_peak"] == 0
        assert steering["dup_acks_out"] == 0
        assert steering["peer_retransmits"] == 0
        assert sum(1 for n in steering["rx_steered"] if n > 0) >= 3
        assert result.throughput_gbps > 0

    def test_flow_director_races_reorder_contended_flows(self):
        """The acceptance corner: 16 flows over 8 queues on 16 CPUs.
        Consumer migrations retarget filters mid-flight, stranding
        frames on the old queue -- visible as out-of-order segments,
        duplicate ACKs and a spurious peer retransmit."""
        result = run_experiment(_fast_config(
            "flow-director", n_cpus=16, n_queues=8, n_connections=16))
        steering = result.to_dict()["steering"]
        assert steering["flow_director"] is True
        assert steering["fd_samples"] > 0
        assert steering["fd_retargets"] > 0
        assert steering["reorder_depth_peak"] > 0
        assert steering["dup_acks_out"] > 0
        assert result.throughput_gbps > 0

    def test_flow_director_needs_multiqueue(self):
        with pytest.raises(ValueError):
            run_experiment(_fast_config("flow-director", n_queues=1,
                                        n_cpus=2),
                           cache=None)


class TestConfigStability:
    def test_single_queue_key_unchanged(self):
        """``n_queues=1`` must serialize exactly like the pre-existing
        config -- otherwise every cached result from earlier revisions
        is silently invalidated."""
        old_style = ExperimentConfig(direction="rx", message_size=4096)
        explicit = ExperimentConfig(direction="rx", message_size=4096,
                                    n_queues=1)
        assert "n_queues" not in old_style.to_dict()
        assert old_style.to_dict() == explicit.to_dict()
        assert old_style.label() == explicit.label()

    def test_multiqueue_key_and_label(self):
        config = ExperimentConfig(direction="rx", message_size=4096,
                                  affinity="rss", n_queues=4)
        assert config.to_dict()["n_queues"] == 4
        assert "+4q" in config.label()

    def test_rejects_bad_queue_count(self):
        with pytest.raises(ValueError):
            ExperimentConfig(direction="rx", message_size=4096, n_queues=0)


class TestHyperthreadSteering:
    """IRQ steering must target physical cores, never HT siblings."""

    def test_core_representatives(self):
        ht = Machine(n_cpus=4, hyperthreading=True)
        assert list(ht.core_representatives()) == [0, 2, 4, 6]
        assert ht.core_first(5) == 4 and ht.core_first(4) == 4
        flat = Machine(n_cpus=4)
        assert list(flat.core_representatives()) == [0, 1, 2, 3]
        assert flat.core_first(3) == 3

    def test_spread_queue_irqs_lands_on_representatives(self):
        machine = Machine(n_cpus=2, seed=3, hyperthreading=True)
        # Built for its side effect: registering the queue IRQ lines.
        NetworkStack(machine, NetParams(), n_connections=4,
                     mode="rx", message_size=4096, n_queues=4)
        vectors = [QUEUE_VECTOR_BASE + q for q in range(4)]
        assignment = spread_queue_irqs(machine, vectors)
        reps = set(machine.core_representatives())
        assert set(assignment.values()) <= reps
        # 4 queues over 2 physical cores: both cores serve queues.
        assert set(assignment.values()) == reps

    def test_irq_rotator_avoids_siblings(self):
        machine = Machine(n_cpus=4, seed=3, hyperthreading=True)
        stack = NetworkStack(machine, NetParams(), n_connections=2,
                             mode="tx", message_size=4096)
        vectors = [conn.nic.vector for conn in stack.connections]
        rotator = IrqRotator(machine, vectors)
        reps = set(machine.core_representatives())
        seen = set()
        for _ in range(64):
            rotator._rotate()
            for vector in vectors:
                mask = machine.ioapic.get(vector).smp_affinity
                cpu = mask.bit_length() - 1
                assert mask == 1 << cpu  # single-CPU mask
                assert cpu in reps
                seen.add(cpu)
        rotator.stop()
        # With 64 random draws over 2 cores the rotator visited both.
        assert seen == reps

    def test_rss_mode_steers_to_representatives(self):
        """The legacy software-RSS controller on an HT machine points
        every flow's IRQ at a core's first sibling."""
        from repro.apps.ttcp import TtcpWorkload

        machine = Machine(n_cpus=2, seed=3, hyperthreading=True)
        stack = NetworkStack(machine, NetParams(), n_connections=4,
                             mode="tx", message_size=16384)
        workload = TtcpWorkload(machine, stack, 16384)
        tasks = workload.spawn_all()
        applied = apply_affinity(machine, stack, tasks, "rss")
        machine.start()
        machine.run_for(6_000_000)
        reps = set(machine.core_representatives())
        for conn in stack.connections:
            mask = machine.ioapic.get(conn.nic.vector).smp_affinity
            cpu = mask.bit_length() - 1
            assert mask == 1 << cpu
            assert cpu in reps
        applied["controller"].stop()
