"""Unit tests for the NIC model and the ideal peer."""

import pytest

from repro.kernel.machine import Machine
from repro.net.nic import Nic
from repro.net.packet import ack_packet, data_packet
from repro.net.params import NetParams
from repro.net.peer import Peer
from repro.net.skbuff import SkbPools


@pytest.fixture
def rig():
    class Rig:
        pass

    r = Rig()
    r.machine = Machine(n_cpus=2, seed=1)
    r.params = NetParams()
    r.nic = Nic(r.machine, 0, 0x19, r.params)
    r.machine.register_irq(
        __import__("repro.kernel.interrupts", fromlist=["IrqLine"]).IrqLine(
            0x19, "eth0", lambda ctx: None
        )
    )
    r.pools = SkbPools(r.machine, r.params)
    for _ in range(32):
        r.nic.post_rx(r.pools.alloc_nocharge(0))
    return r


class TestPacket:
    def test_wire_len_includes_headers(self):
        pkt = data_packet(0, 0, 1460)
        assert pkt.wire_len == 1460 + 54

    def test_ack_minimum_frame(self):
        pkt = ack_packet(0, 1000, 64240)
        assert pkt.wire_len == 60
        assert pkt.is_ack

    def test_end_seq(self):
        pkt = data_packet(1, 100, 50)
        assert pkt.end_seq == 150


class TestNicReceive:
    def test_frame_dma_after_wire_delay(self, rig):
        rig.nic.deliver_frame(data_packet(0, 0, 1460))
        assert rig.nic.frames_in == 0  # not yet: wire serialization
        rig.machine.engine.run(until=rig.params.wire_cycles(1514) + 10)
        assert rig.nic.frames_in == 1
        assert len(rig.nic.rx_pending) == 1

    def test_wire_serializes_back_to_back_frames(self, rig):
        for seq in (0, 1460):
            rig.nic.deliver_frame(data_packet(0, seq, 1460))
        one_frame = rig.params.wire_cycles(1460 + 54)
        rig.machine.engine.run(until=one_frame + 10)
        assert rig.nic.frames_in == 1
        rig.machine.engine.run(until=2 * one_frame + 10)
        assert rig.nic.frames_in == 2

    def test_rx_dma_invalidates_buffer(self, rig):
        # Warm the posted buffer in CPU0's cache, then receive into it.
        skb = rig.nic.rx_posted[0]
        cpu = rig.machine.cpus[0]
        spec = rig.machine.functions.register("toucher", "engine")
        cpu.charge(spec, 10, reads=[(skb.data.addr, 256)])
        line = skb.data.addr // 64
        assert cpu.l1.probe(line) or cpu.l2.probe(line) or cpu.l3.probe(line)
        rig.nic.deliver_frame(data_packet(0, 0, 1460))
        rig.machine.engine.run(until=rig.params.wire_cycles(1514) + 10)
        assert not cpu.l1.probe(line)
        assert not cpu.l3.probe(line)

    def test_drops_when_ring_empty(self, rig):
        rig.nic.rx_posted = []
        rig.nic.deliver_frame(data_packet(0, 0, 1460))
        rig.machine.engine.run(until=rig.params.wire_cycles(1514) + 10)
        assert rig.nic.rx_drops == 1

    def test_skb_carries_packet(self, rig):
        pkt = data_packet(0, 2920, 1460)
        rig.nic.deliver_frame(pkt)
        rig.machine.engine.run(until=rig.params.wire_cycles(1514) + 10)
        _, skb = rig.nic.rx_pending[0]
        assert skb.pkt is pkt
        assert skb.seq == 2920 and skb.len == 1460


class TestCoalescing:
    def test_interrupt_after_frame_threshold(self, rig):
        for i in range(rig.params.coalesce_frames):
            rig.nic.deliver_frame(data_packet(0, i * 1460, 1460))
        rig.machine.engine.run(
            until=rig.params.wire_cycles(1514) * 10
        )
        assert rig.nic.irqs_fired == 1

    def test_interrupt_after_timeout_for_single_frame(self, rig):
        rig.nic.deliver_frame(data_packet(0, 0, 1460))
        rig.machine.engine.run(
            until=rig.params.wire_cycles(1514)
            + rig.params.coalesce_cycles + 100
        )
        assert rig.nic.irqs_fired == 1

    def test_no_rearm_until_claimed(self, rig):
        for i in range(rig.params.coalesce_frames * 2):
            rig.nic.deliver_frame(data_packet(0, i * 1460, 1460))
        rig.machine.engine.run(until=rig.params.wire_cycles(1514) * 40)
        assert rig.nic.irqs_fired == 1  # latched until the ISR claims
        rig.nic.claim()
        assert rig.nic.rx_pending == []


class TestSinkPeer:
    def test_acks_every_other_segment(self, rig):
        peer = Peer(rig.machine, rig.nic, 0, rig.params, "sink")
        peer.on_frame(data_packet(0, 0, 1460))
        assert peer.acks_sent == 0
        peer.on_frame(data_packet(0, 1460, 1460))
        assert peer.acks_sent == 1
        assert peer.rcv_nxt == 2920

    def test_flush_timer_acks_stragglers(self, rig):
        peer = Peer(rig.machine, rig.nic, 0, rig.params, "sink")
        peer.on_frame(data_packet(0, 0, 1460))
        from repro.net.peer import SINK_FLUSH_CYCLES

        rig.machine.engine.run(
            until=rig.machine.engine.now + SINK_FLUSH_CYCLES + 10
        )
        assert peer.acks_sent == 1


class TestSourcePeer:
    def test_respects_advertised_window(self, rig):
        peer = Peer(rig.machine, rig.nic, 0, rig.params, "source")
        peer.peer_rcv_window = 4 * rig.params.mss
        peer.start_stream()
        assert peer.segments_sent == 4

    def test_ack_advances_stream(self, rig):
        peer = Peer(rig.machine, rig.nic, 0, rig.params, "source")
        peer.peer_rcv_window = 2 * rig.params.mss
        peer.start_stream()
        sent = peer.segments_sent
        peer.on_frame(ack_packet(0, rig.params.mss, 2 * rig.params.mss))
        assert peer.segments_sent == sent + 1

    def test_zero_window_stalls(self, rig):
        peer = Peer(rig.machine, rig.nic, 0, rig.params, "source")
        peer.peer_rcv_window = 2 * rig.params.mss
        peer.start_stream()
        sent = peer.segments_sent
        peer.on_frame(ack_packet(0, 0, 0))
        assert peer.segments_sent == sent

    def test_mode_validation(self, rig):
        with pytest.raises(ValueError):
            Peer(rig.machine, rig.nic, 0, rig.params, "bogus")
        sink = Peer(rig.machine, rig.nic, 0, rig.params, "sink")
        with pytest.raises(RuntimeError):
            sink.start_stream()
