"""Focused tests on the TCP transmit/receive code paths."""


from repro.apps.ttcp import TtcpWorkload
from repro.kernel.machine import Machine
from repro.net.params import NetParams
from repro.net.stack import NetworkStack

MS = 2_000_000


def build(mode="tx", size=65536, n=1, params=None, seed=2):
    machine = Machine(n_cpus=2, seed=seed)
    stack = NetworkStack(machine, params or NetParams(), n_connections=n,
                         mode=mode, message_size=size)
    workload = TtcpWorkload(machine, stack, size)
    workload.spawn_all()
    machine.start()
    if mode == "rx":
        stack.start_peers()
    return machine, stack, workload


class TestTransmitPath:
    def test_segmentation_to_mss(self):
        machine, stack, _ = build("tx", size=65536)
        machine.run_for(10 * MS)
        conn = stack.connections[0]
        # Every completed wire frame carried at most one MSS.
        assert conn.peer.rcv_nxt > 0
        assert conn.sock.segs_out >= conn.peer.rcv_nxt // stack.params.mss

    def test_nagle_holds_partial_with_data_in_flight(self):
        machine, stack, _ = build("tx", size=200)
        machine.run_for(5 * MS)
        sock = stack.connections[0].sock
        # Coalescing means wire segments >> 200B on average.
        if sock.segs_out > 10:
            avg = sock.snd_nxt / sock.segs_out
            assert avg > 400

    def test_retransmit_queue_cleaned_by_acks(self):
        machine, stack, _ = build("tx", size=65536)
        machine.run_for(10 * MS)
        sock = stack.connections[0].sock
        # Acked skbs were freed: queue holds only in-flight + unsent.
        queued_bytes = sum(s.len for s in sock.send_queue)
        assert queued_bytes <= stack.params.sndbuf * 2
        assert sock.snd_una > 0

    def test_tx_completions_free_clones(self):
        machine, stack, _ = build("tx", size=65536)
        machine.run_for(10 * MS)
        pools = stack.pools
        # Heads outstanding should stay bounded (no clone leak).
        assert pools.head_cache.outstanding() < 600

    def test_rexmit_timer_armed_and_cancelled(self):
        machine, stack, _ = build("tx", size=65536)
        machine.run_for(10 * MS)
        conn = stack.connections[0]
        assert conn.sock.rexmit_timer.armed > 0
        assert conn.rto_fires == 0


class TestReceivePath:
    def test_acks_flow_back_to_peer(self):
        machine, stack, _ = build("rx", size=65536)
        machine.run_for(10 * MS)
        sock = stack.connections[0].sock
        assert sock.acks_out > 0
        peer = stack.connections[0].peer
        assert peer.snd_una > 0  # our ACKs advanced the peer

    def test_delack_timer_armed(self):
        # With ack_every high, segments arm the delayed-ACK timer
        # (window-update ACKs may still cancel it before it fires).
        params = NetParams(ack_every=64)
        machine, stack, _ = build("rx", size=65536, params=params)
        machine.run_for(30 * MS)
        sock = stack.connections[0].sock
        assert sock.delack_timer.armed > 0

    def test_backlog_used_when_reader_owns_socket(self):
        # Needs CPU contention so segments arrive while a reader holds
        # its socket: use the full 8-connection configuration.
        machine, stack, _ = build("rx", size=65536, n=8)
        machine.run_for(15 * MS)
        total = sum(c.sock.backlogged_total for c in stack.connections)
        assert total > 0

    def test_flow_control_prevents_overrun(self):
        machine, stack, _ = build("rx", size=65536)
        machine.run_for(15 * MS)
        sock = stack.connections[0].sock
        assert sock.rmem_queued <= stack.params.rcvbuf
        assert sum(n.rx_drops for n in stack.nics) == 0


class TestWireLevel:
    def test_wire_is_not_the_bottleneck(self):
        """The paper's regime: the CPU saturates before the wire."""
        machine, stack, workload = build("tx", size=65536, n=1)
        machine.run_for(10 * MS)
        per_conn_gbps = (
            workload.total_bytes() * 8.0
            / (machine.engine.now / machine.hz) / 1e9
        )
        assert per_conn_gbps < stack.params.wire_gbps

    def test_interrupt_coalescing_bounds_irq_rate(self):
        machine, stack, _ = build("tx", size=65536, n=1)
        machine.run_for(10 * MS)
        nic = stack.nics[0]
        assert nic.irqs_fired > 0
        frames = nic.frames_out + nic.frames_in
        assert frames / nic.irqs_fired > 1.5
