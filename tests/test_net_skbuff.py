"""Unit tests for sk_buffs and the slab allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.machine import Machine
from repro.mem.layout import AddressSpace
from repro.net.params import NetParams
from repro.net.skbuff import (
    PER_CPU_FREELIST_MAX,
    SKB_HEAD_SIZE,
    SkBuff,
    SkbPools,
    SlabCache,
)


class TestSlabCache:
    def make(self, n_cpus=2):
        return SlabCache("t", 2048, AddressSpace(), n_cpus)

    def test_alloc_creates_object(self):
        cache = self.make()
        obj = cache.alloc(0)
        assert obj.size == 2048
        assert cache.created == 1

    def test_free_then_alloc_reuses_lifo(self):
        cache = self.make()
        a = cache.alloc(0)
        b = cache.alloc(0)
        cache.free(a, 0)
        cache.free(b, 0)
        assert cache.alloc(0) is b  # LIFO: hottest first
        assert cache.alloc(0) is a
        assert cache.created == 2

    def test_per_cpu_freelists_are_private(self):
        cache = self.make()
        a = cache.alloc(0)
        cache.free(a, 0)
        b = cache.alloc(1)  # CPU1 does not see CPU0's freelist
        assert b is not a
        assert cache.created == 2

    def test_overflow_to_global_enables_cross_cpu_reuse(self):
        cache = self.make()
        objs = [cache.alloc(0) for _ in range(PER_CPU_FREELIST_MAX + 5)]
        for obj in objs:
            cache.free(obj, 0)
        before = cache.created
        got = [cache.alloc(1) for _ in range(5)]
        assert cache.created == before  # served from the global list
        assert cache.cross_cpu_refills == 5
        assert all(g in objs for g in got)

    def test_outstanding(self):
        cache = self.make()
        a = cache.alloc(0)
        assert cache.outstanding() == 1
        cache.free(a, 0)
        assert cache.outstanding() == 0

    @given(st.lists(st.sampled_from(["a0", "a1", "f"]), max_size=60))
    def test_never_hands_out_live_object(self, ops):
        cache = self.make()
        live = []
        for op in ops:
            if op == "f" and live:
                cache.free(live.pop(), 0)
            elif op != "f":
                obj = cache.alloc(int(op[1]))
                assert obj not in live
                live.append(obj)


class TestSkBuff:
    def make_skb(self):
        space = AddressSpace()
        head = space.alloc("head", SKB_HEAD_SIZE)
        data = space.alloc("data", 2048)
        return SkBuff(head, data)

    def test_room_respects_mss_and_buffer(self):
        skb = self.make_skb()
        assert skb.room(1460) == 1460
        skb.len = 1000
        assert skb.room(1460) == 460
        assert skb.room(4000) == 2048 - SkBuff.HEADER_BYTES - 1000

    def test_payload_range_offsets_past_header(self):
        skb = self.make_skb()
        skb.len = 100
        addr, size = skb.payload_range()
        assert addr == skb.data.addr + SkBuff.HEADER_BYTES
        assert size == 100

    def test_remaining_tracks_consumption(self):
        skb = self.make_skb()
        skb.len = 1000
        skb.consumed = 400
        assert skb.remaining == 600

    def test_truesize(self):
        skb = self.make_skb()
        assert skb.truesize == SKB_HEAD_SIZE + 2048


class TestSkbPools:
    @pytest.fixture
    def pools(self):
        machine = Machine(n_cpus=2, seed=1)
        return machine, SkbPools(machine, NetParams())

    def test_alloc_charges_and_returns(self, pools):
        machine, p = pools
        ctx = machine.states[0].softirq_ctx
        spec = machine.functions.register("alloc_skb_t", "buf_mgmt")
        busy_before = machine.cpus[0].busy_cycles
        skb = p.alloc(ctx, spec, 200)
        assert machine.cpus[0].busy_cycles > busy_before
        assert skb.len == 0 and not skb.is_clone

    def test_clone_shares_data(self, pools):
        machine, p = pools
        ctx = machine.states[0].softirq_ctx
        spec = machine.functions.register("skb_ops_t", "buf_mgmt")
        skb = p.alloc(ctx, spec, 200)
        skb.len = 500
        skb.seq = 42
        skb.end_seq = 542
        clone = p.clone(ctx, spec, 100, skb)
        assert clone.data is skb.data
        assert clone.head is not skb.head
        assert clone.is_clone
        assert (clone.seq, clone.end_seq, clone.len) == (42, 542, 500)

    def test_free_clone_keeps_data_buffer(self, pools):
        machine, p = pools
        ctx = machine.states[0].softirq_ctx
        spec = machine.functions.register("free_t", "buf_mgmt")
        skb = p.alloc(ctx, spec, 200)
        clone = p.clone(ctx, spec, 100, skb)
        data_outstanding = p.data_cache.outstanding()
        p.free(ctx, spec, 150, clone)
        assert p.data_cache.outstanding() == data_outstanding
        p.free(ctx, spec, 150, skb)
        assert p.data_cache.outstanding() == data_outstanding - 1

    def test_alloc_nocharge_does_not_charge(self, pools):
        machine, p = pools
        busy = machine.cpus[0].busy_cycles
        p.alloc_nocharge(0)
        assert machine.cpus[0].busy_cycles == busy
