"""Small-unit coverage: packets, copies, dev layer, params."""

import pytest

from repro.kernel.machine import Machine
from repro.net.copies import charge_rx_copy, charge_tx_copy
from repro.net.dev import SoftnetData
from repro.net.packet import (
    HEADER_WIRE_BYTES,
    MIN_FRAME,
    ack_packet,
    control_packet,
    data_packet,
)
from repro.net.params import (
    FUNCTION_PROFILES,
    NetParams,
    RX_COPY_INSTR_PER_LINE,
    TX_COPY_INSTR_PER_LINE,
    base_instructions,
    register_profiles,
)


class TestPacketHelpers:
    def test_data_packet_fields(self):
        pkt = data_packet(3, 1000, 500, ack_seq=99, window=4096)
        assert (pkt.conn_id, pkt.seq, pkt.end_seq) == (3, 1000, 1500)
        assert pkt.ack_seq == 99 and pkt.window == 4096
        assert pkt.ctl is None and not pkt.is_ack

    def test_control_packet(self):
        pkt = control_packet(1, "syn")
        assert pkt.ctl == "syn" and pkt.len == 0
        assert pkt.wire_len == MIN_FRAME

    def test_wire_len_floor(self):
        assert data_packet(0, 0, 1).wire_len == MIN_FRAME
        assert data_packet(0, 0, 100).wire_len == 100 + HEADER_WIRE_BYTES

    def test_repr(self):
        assert "ack" in repr(ack_packet(0, 5, 10))
        assert "data" in repr(data_packet(0, 5, 10))


class TestNetParams:
    def test_wire_cycles_scale_with_bytes(self):
        params = NetParams()
        assert params.wire_cycles(1500) > params.wire_cycles(64)

    def test_wire_rate_math(self):
        # 1 Gb/s at 2 GHz: 16 cycles per byte.
        params = NetParams(wire_gbps=1.0)
        assert params.cycles_per_wire_byte == pytest.approx(16.0)

    def test_derived_cycle_values(self):
        params = NetParams(one_way_delay_us=50, coalesce_us=20,
                           delack_ms=40, rto_ms=200)
        assert params.one_way_delay_cycles == 100_000
        assert params.coalesce_cycles == 40_000
        assert params.delack_cycles == 80_000_000
        assert params.rto_cycles == 400_000_000


class TestFunctionProfiles:
    def test_every_profile_registers(self):
        machine = Machine(n_cpus=2, seed=1)
        specs = register_profiles(machine.functions)
        assert set(specs) == set(FUNCTION_PROFILES)

    def test_bins_are_known(self):
        from repro.cpu.function import BINS

        for name, prof in FUNCTION_PROFILES.items():
            assert prof["bin"] in BINS, name

    def test_base_instructions(self):
        assert base_instructions("tcp_sendmsg") > 0
        with pytest.raises(KeyError):
            base_instructions("nonexistent_fn")

    def test_reregistration_returns_same_spec(self):
        machine = Machine(n_cpus=2, seed=1)
        a = register_profiles(machine.functions)
        b = register_profiles(machine.functions)
        assert a["tcp_sendmsg"] is b["tcp_sendmsg"]


class TestCopies:
    @pytest.fixture
    def rig(self):
        machine = Machine(n_cpus=2, seed=1)
        spec_tx = machine.functions.register("tx_copy_t", "copies",
                                             branch_frac=0.02)
        spec_rx = machine.functions.register("rx_copy_t", "copies",
                                             branch_frac=0.1)
        src = machine.space.alloc("src", 4096)
        dst = machine.space.alloc("dst", 4096)
        return machine, spec_tx, spec_rx, src, dst

    def test_tx_copy_instruction_density(self, rig):
        machine, spec_tx, _, src, dst = rig
        from repro.cpu.events import INSTRUCTIONS

        before = machine.cpus[0].totals[INSTRUCTIONS]
        charge_tx_copy(machine.states[0].softirq_ctx, spec_tx,
                       (src.addr, 1460), (dst.addr, 1460), 1460)
        instr = machine.cpus[0].totals[INSTRUCTIONS] - before
        lines = -(-1460 // 64)
        assert instr == 100 + lines * TX_COPY_INSTR_PER_LINE

    def test_rx_copy_is_instruction_sparse(self, rig):
        machine, _, spec_rx, src, dst = rig
        from repro.cpu.events import INSTRUCTIONS

        before = machine.cpus[0].totals[INSTRUCTIONS]
        charge_rx_copy(machine.states[0].softirq_ctx, spec_rx,
                       (src.addr, 1460), (dst.addr, 1460), 1460)
        instr = machine.cpus[0].totals[INSTRUCTIONS] - before
        lines = -(-1460 // 64)
        assert instr == 150 + lines * RX_COPY_INSTR_PER_LINE
        # The rep-movl path retires far fewer instructions per byte.
        assert RX_COPY_INSTR_PER_LINE < TX_COPY_INSTR_PER_LINE

    def test_rx_copy_cold_source_is_expensive(self, rig):
        machine, _, spec_rx, src, dst = rig
        ctx = machine.states[0].softirq_ctx
        machine.memsys.dma_write(src.addr, 1460)  # cold source
        cold = charge_rx_copy(ctx, spec_rx, (src.addr, 1460),
                              (dst.addr, 1460), 1460)
        warm = charge_rx_copy(ctx, spec_rx, (src.addr, 1460),
                              (dst.addr, 1460), 1460)
        assert cold > 3 * warm


class TestSoftnetData:
    def test_backlog_peak_tracking(self):
        machine = Machine(n_cpus=2, seed=1)
        softnet = SoftnetData(machine, 0)
        for i in range(5):
            softnet.enqueue_backlog(object())
        softnet.backlog.clear()
        softnet.enqueue_backlog(object())
        assert softnet.backlog_peak == 5

    def test_head_range_is_local_object(self):
        machine = Machine(n_cpus=2, seed=1)
        a = SoftnetData(machine, 0)
        b = SoftnetData(machine, 1)
        assert a.head_range()[0] != b.head_range()[0]
