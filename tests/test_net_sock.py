"""Unit and property tests for socket state (struct sock)."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.machine import Machine
from repro.mem.layout import AddressSpace
from repro.net.params import NetParams
from repro.net.skbuff import SKB_HEAD_SIZE, SkBuff
from repro.net.sock import Sock, TCB_BYTES


@pytest.fixture
def sock():
    machine = Machine(n_cpus=2, seed=1)
    return Sock(machine, NetParams(), 0, "test")


def make_skb(seq=0, length=0):
    space = AddressSpace()
    skb = SkBuff(space.alloc("h", SKB_HEAD_SIZE), space.alloc("d", 2048))
    skb.seq = seq
    skb.len = length
    skb.end_seq = seq + length
    return skb


class TestMemoryRegions:
    def test_tcb_and_buf_regions_disjoint(self, sock):
        tcb_addr, tcb_size = sock.tcb_read(TCB_BYTES)
        buf_addr, buf_size = sock.buf_read(64)
        assert tcb_addr + tcb_size <= buf_addr

    def test_tcb_read_clamped(self, sock):
        addr, size = sock.tcb_read(10_000)
        assert size == TCB_BYTES


class TestTransmitState:
    def test_sndbuf_accounting(self, sock):
        assert sock.sndbuf_free() == sock.params.sndbuf
        assert sock.can_queue_skb()
        skb = make_skb(0, 1000)
        sock.send_queue.append(skb)
        sock.wmem_queued += skb.truesize
        assert sock.sndbuf_free() == sock.params.sndbuf - skb.truesize

    def test_window_allows(self, sock):
        sock.snd_wnd = 3000
        sock.snd_nxt = 2000
        sock.snd_una = 0
        assert sock.window_allows(1000)
        assert not sock.window_allows(1001)

    def test_ack_clean_frees_only_sent_and_acked(self, sock):
        skbs = [make_skb(i * 1000, 1000) for i in range(3)]
        for skb in skbs:
            sock.send_queue.append(skb)
            sock.wmem_queued += skb.truesize
        sock.send_head = 2  # two sent, one unsent
        sock.snd_nxt = 2000
        freed = sock.ack_clean(1000)
        assert freed == [skbs[0]]
        assert sock.send_head == 1
        assert sock.snd_una == 1000

    def test_ack_clean_ignores_old_ack(self, sock):
        sock.snd_una = 5000
        assert sock.ack_clean(3000) == []
        assert sock.snd_una == 5000

    def test_tail_unsent(self, sock):
        assert sock.tail_unsent() is None
        skb = make_skb(0, 100)
        sock.send_queue.append(skb)
        assert sock.tail_unsent() is skb
        sock.send_head = 1  # fully sent
        assert sock.tail_unsent() is None

    @given(st.lists(st.integers(min_value=1, max_value=1460),
                    min_size=1, max_size=30))
    def test_ack_clean_conserves_wmem(self, lengths):
        machine = Machine(n_cpus=2, seed=1)
        sock = Sock(machine, NetParams(), 0, "prop")
        seq = 0
        for length in lengths:
            skb = make_skb(seq, length)
            seq += length
            sock.send_queue.append(skb)
            sock.wmem_queued += skb.truesize
        sock.send_head = len(lengths)
        sock.snd_nxt = seq
        freed = sock.ack_clean(seq)
        assert len(freed) == len(lengths)
        assert sock.wmem_queued == 0
        assert sock.snd_una == seq


class TestReceiveState:
    def test_receive_data_in_order(self, sock):
        skb = make_skb(0, 1460)
        sock.receive_data(skb)
        assert sock.rcv_nxt == 1460
        assert sock.rmem_queued == skb.truesize

    def test_out_of_order_rejected(self, sock):
        with pytest.raises(RuntimeError):
            sock.receive_data(make_skb(100, 100))

    def test_advertised_window_shrinks_with_queue(self, sock):
        start = sock.advertised_window()
        skb = make_skb(0, 1460)
        sock.receive_data(skb)
        assert sock.advertised_window() <= start

    def test_window_never_negative(self, sock):
        seq = 0
        while sock.rcvbuf_free() >= 2048:
            skb = make_skb(seq, 1460)
            sock.receive_data(skb)
            seq += 1460
        assert sock.advertised_window() >= 0

    def test_window_update_due(self, sock):
        # Queue enough truesize that the advertised window drops below
        # its 64240 clamp and starts tracking buffer occupancy.
        seq = 0
        for _ in range(15):
            sock.receive_data(make_skb(seq, 1460))
            seq += 1460
        assert sock.advertised_window() < sock.params.max_window
        sock.last_window_advertised = sock.advertised_window()
        assert not sock.window_update_due()
        # Drain: free enough truesize to re-open by 2 MSS.
        sock.receive_queue.clear()
        sock.rmem_queued = 0
        assert sock.window_update_due()

    @given(st.lists(st.integers(min_value=1, max_value=1460), max_size=40))
    def test_rcv_nxt_monotone(self, lengths):
        machine = Machine(n_cpus=2, seed=1)
        sock = Sock(machine, NetParams(), 0, "prop")
        seq = 0
        last = 0
        for length in lengths:
            if sock.rcvbuf_free() < 2048 + SKB_HEAD_SIZE:
                break
            sock.receive_data(make_skb(seq, length))
            seq += length
            assert sock.rcv_nxt >= last
            last = sock.rcv_nxt
