"""End-to-end integrity tests for the assembled stack.

These run short full-system simulations and check conservation
invariants that no calibration tweak may break: bytes delivered equal
bytes sent, sequences advance without gaps, buffers are conserved, no
packets are dropped or retransmitted in the loss-free testbed.
"""

import pytest

from repro.apps.ttcp import TtcpWorkload
from repro.core.modes import apply_affinity
from repro.kernel.machine import Machine
from repro.net.params import NetParams
from repro.net.stack import NetworkStack

MS = 2_000_000


def build(mode, message_size, n_connections=4, affinity="none", seed=9):
    machine = Machine(n_cpus=2, seed=seed)
    stack = NetworkStack(
        machine, NetParams(), n_connections=n_connections, mode=mode,
        message_size=message_size,
    )
    workload = TtcpWorkload(machine, stack, message_size)
    tasks = workload.spawn_all()
    apply_affinity(machine, stack, tasks, affinity)
    machine.start()
    if mode == "rx":
        stack.start_peers()
    return machine, stack, workload


def run(machine, ms):
    machine.run_for(ms * MS)


class TestTxIntegrity:
    @pytest.fixture(scope="class")
    def tx(self):
        machine, stack, workload = build("tx", 65536)
        run(machine, 15)
        return machine, stack, workload

    def test_data_flows(self, tx):
        _, _, workload = tx
        assert workload.total_bytes() > 0
        assert all(b > 0 for b in workload.bytes_done)

    def test_sequence_consistency(self, tx):
        _, stack, _ = tx
        for conn in stack.connections:
            sock = conn.sock
            assert sock.snd_una <= sock.snd_nxt <= conn.write_seq
            # The peer acknowledged exactly what it received.
            assert conn.peer.rcv_nxt <= sock.snd_nxt

    def test_no_drops_or_rtos(self, tx):
        _, stack, _ = tx
        assert sum(n.rx_drops for n in stack.nics) == 0
        assert sum(c.rto_fires for c in stack.connections) == 0

    def test_wmem_bounded_by_sndbuf(self, tx):
        _, stack, _ = tx
        for conn in stack.connections:
            assert 0 <= conn.sock.wmem_queued <= stack.params.sndbuf

    def test_window_respected(self, tx):
        _, stack, _ = tx
        for conn in stack.connections:
            assert conn.sock.in_flight <= stack.params.max_window

    def test_skb_conservation(self, tx):
        _, stack, _ = tx
        pools = stack.pools
        # Live skbs: send queues + backlogs + rings + pending + driver
        # completion queues.  Everything else must be back in a slab.
        live = 0
        for conn in stack.connections:
            live += len(conn.sock.send_queue)
            live += len(conn.sock.receive_queue)
            live += len(conn.sock.backlog)
        for nic in stack.nics:
            live += len(nic.rx_posted) + len(nic.rx_pending)
            live += len(nic.tx_done)
        for softnet in stack.softnet:
            live += len(softnet.backlog) + len(softnet.completion_queue)
        # In-flight clones on the wire: tx frames scheduled but not yet
        # completed are bounded by in-flight windows.
        outstanding = pools.head_cache.outstanding()
        in_flight_bound = sum(
            c.sock.in_flight // 1000 + 2 for c in stack.connections
        )
        assert outstanding <= live + in_flight_bound + len(stack.connections)


class TestRxIntegrity:
    @pytest.fixture(scope="class")
    def rx(self):
        machine, stack, workload = build("rx", 65536)
        run(machine, 15)
        return machine, stack, workload

    def test_data_flows(self, rx):
        _, _, workload = rx
        assert workload.total_bytes() > 0

    def test_bytes_conserved(self, rx):
        _, stack, workload = rx
        for conn in stack.connections:
            sock = conn.sock
            queued = sum(s.remaining for s in sock.receive_queue)
            backlogged = sum(s.len for s in sock.backlog)
            read = workload.bytes_done[conn.conn_id]
            # peer sent == read + still queued + backlogged + on wire /
            # in rings.  All terms non-negative and peer >= read.
            assert conn.peer.total_sent >= read + queued + backlogged
            assert sock.rcv_nxt <= conn.peer.snd_nxt

    def test_rcvbuf_bounded(self, rx):
        _, stack, _ = rx
        for conn in stack.connections:
            assert 0 <= conn.sock.rmem_queued <= stack.params.rcvbuf

    def test_no_drops(self, rx):
        _, stack, _ = rx
        assert sum(n.rx_drops for n in stack.nics) == 0

    def test_in_order_delivery(self, rx):
        _, stack, _ = rx
        for conn in stack.connections:
            queue = conn.sock.receive_queue
            for a, b in zip(queue, queue[1:]):
                assert a.end_seq == b.seq


class TestSmallMessages:
    def test_tx_128_coalesces_wire_segments(self):
        machine, stack, workload = build("tx", 128, n_connections=2)
        run(machine, 10)
        for conn in stack.connections:
            # Nagle: the wire carried far fewer frames than writes.
            writes = workload.messages_done[conn.conn_id]
            assert writes > 0
            assert conn.sock.segs_out < writes

    def test_rx_128_partial_reads(self):
        machine, stack, workload = build("rx", 128, n_connections=2)
        run(machine, 10)
        assert workload.total_bytes() > 0
        # Reads consume MSS skbs a slice at a time.
        for conn in stack.connections:
            for skb in conn.sock.receive_queue:
                assert 0 <= skb.consumed <= skb.len


class TestAffinityModesRun:
    @pytest.mark.parametrize("affinity", ["none", "proc", "irq", "full"])
    def test_all_modes_move_data(self, affinity):
        machine, stack, workload = build(
            "tx", 16384, n_connections=4, affinity=affinity
        )
        run(machine, 8)
        assert workload.total_bytes() > 0
        assert sum(n.rx_drops for n in stack.nics) == 0

    def test_full_affinity_pins_interrupts_and_processes(self):
        machine, stack, workload = build(
            "tx", 16384, n_connections=4, affinity="full"
        )
        run(machine, 8)
        # Connections 0-1 entirely on CPU0, 2-3 on CPU1.
        assert machine.procstat.deliveries(stack.nics[0].vector)[1] == 0
        assert machine.procstat.deliveries(stack.nics[3].vector)[0] == 0
        for i, task in enumerate(workload.tasks):
            expected = 0 if i < 2 else 1
            assert task.prev_cpu == expected
