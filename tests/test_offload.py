"""Modern NIC offload suite: LSO, GRO flush edges, adaptive ITR, TOE.

Covers the offload engine's contract with the rest of the simulator:

- GRO's flush edges (push, out-of-order abort, aging timer vs the ITR
  timer, single-segment passthrough) -- and the invariant that GRO
  *never* reorders, so a Flow Director stale-filter race still
  surfaces as duplicate ACKs unless Wu et al.'s absorb variant is on.
- The ITR coalescing sweep's observable: the timer setting moves the
  receiver's duplicate-ACK count under the contended Flow Director
  configuration.
- The offload-vs-affinity acceptance: at a matched offered load,
  ``toe`` must shrink the Copies / Interface / Engine bins against
  ``full`` affinity in both directions, and the rendered comparison
  table must say so.
"""

import pytest

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.modes import EXTENDED_MODES
from repro.core.offload import bin_cycles_per_kb, run_offload_study
from repro.core.report import render_coalesce_table, render_offload_table
from repro.core.scale import (
    COALESCE_VARIANTS,
    coalesce_overrides,
    run_coalesce_sweep,
)


def _run(direction, affinity, size=65536, net_overrides=None, **kw):
    kwargs = dict(
        direction=direction,
        message_size=size,
        affinity=affinity,
        n_connections=4,
        warmup_ms=2,
        measure_ms=3,
        seed=7,
    )
    if net_overrides is not None:
        kwargs["net_overrides"] = net_overrides
    kwargs.update(kw)
    return run_experiment(ExperimentConfig(**kwargs), cache=None)


# ----------------------------------------------------------------------
# LSO / TOE registration and engine accounting.
# ----------------------------------------------------------------------

def test_toe_is_a_registered_mode():
    assert "toe" in EXTENDED_MODES


def test_lso_moves_segmentation_onto_the_engine():
    base = _run("tx", "full")
    lso = _run("tx", "full", net_overrides={"lso": True})
    off = lso.payload_get("offload")
    assert off is not None
    assert off["lso_frames"] > 0
    assert off["engine_seg_cycles"] > 0
    # The host no longer pays the per-line segmentation walk: total
    # stack cycles per KB must drop.
    from repro.cpu.events import CYCLES

    def host_per_kb(r):
        return r.stack_total(CYCLES) / (r.work_bits / 8.0 / 1024.0)

    assert host_per_kb(lso) < host_per_kb(base)
    # A host-only run carries no offload block at all (golden-cell
    # byte-identity depends on this).
    assert base.payload_get("offload") is None


def test_toe_runs_transport_on_the_engine():
    tx = _run("tx", "toe")
    rx = _run("rx", "toe")
    for r in (tx, rx):
        off = r.payload_get("offload")
        assert off is not None and off["toe"]
        assert off["toe_acks"] > 0
        assert off["engine_ack_cycles"] > 0
    assert tx.payload_get("offload")["lso_frames"] > 0
    assert rx.payload_get("offload")["engine_rcv_cycles"] > 0


# ----------------------------------------------------------------------
# GRO flush edges.
# ----------------------------------------------------------------------

def test_gro_merges_and_flushes_on_push():
    r = _run("rx", "full", net_overrides={"gro": True})
    off = r.payload_get("offload")
    assert off is not None
    # 64KB messages span many MSS frames: the in-ring merge must have
    # happened, and every message boundary (PSH) must have flushed the
    # flow's held super-frame.
    assert off["gro_merged"] > 0
    assert off["gro_flushes_push"] > 0


def test_gro_single_segment_passthrough_is_bit_identical():
    """Sub-MSS messages put a boundary inside every segment, so every
    frame carries PSH: GRO passes each one straight through, and the
    run must be event-for-event identical to GRO off -- same cycles,
    same bins, same counters."""
    base = _run("rx", "full", size=1024)
    gro = _run("rx", "full", size=1024, net_overrides={"gro": True})
    off = gro.payload_get("offload")
    assert off["gro_merged"] == 0
    a, b = base.to_dict(), gro.to_dict()
    # Only the config (the knob itself) and the offload accounting
    # block may differ.
    a.pop("config"), b.pop("config"), b.pop("offload")
    assert a == b


def test_gro_timer_flush_races_itr_timer():
    """A paced trickle below the coalesce frame threshold: the GRO
    aging timer (shorter than the ITR window) must flush held frames
    before the interrupt fires, so merged super-frames never stall
    behind a long ITR setting."""
    r = _run(
        "rx", "full", size=4096,
        net_overrides={"gro": True, "gro_flush_us": 5,
                       "coalesce_us": 100},
        offered_gbps=0.5,
    )
    off = r.payload_get("offload")
    assert off["gro_flushes_timer"] > 0


def test_gro_aborts_on_out_of_order_frames():
    """The ooo flush edge is the no-reorder guarantee firing: when the
    wire delivers a frame that is not the held super-frame's exact
    continuation, GRO flushes what it holds and passes the stray frame
    through.  Reordering therefore still reaches the host TCP layer
    as duplicate ACKs -- batching reduces how many (fewer, larger
    deliveries), but never hides the gap itself."""
    base = _run("rx", "full", faults="reorder=0.01,depth=4")
    gro = _run(
        "rx", "full", net_overrides={"gro": True},
        faults="reorder=0.01,depth=4",
    )
    off = gro.payload_get("offload")
    assert off["gro_flushes_ooo"] > 0
    dup_base = base.payload_get("faults")["dup_acks"]
    dup_gro = gro.payload_get("faults")["dup_acks"]
    # The reorder is not absorbed: the host still dup-ACKs...
    assert dup_gro > 0
    # ...but in-ring merging coarsens delivery, so fewer of them.
    assert dup_gro < dup_base


def test_gro_does_not_absorb_fd_reorder():
    """A Flow Director stale-filter race still surfaces as duplicate
    ACKs with GRO on (the per-queue hold cannot re-order across
    queues, and the aging timer bounds how long it masks the race).
    Only the Wu et al. absorb variant -- holding the old queue's IRQ
    across the retarget -- may soak the reorder up."""
    fd = dict(
        direction="rx", message_size=16384, affinity="flow-director",
        n_connections=16, n_cpus=16, n_queues=8,
        warmup_ms=2, measure_ms=3, seed=7,
    )
    over = {"gro": True, "coalesce_us": 100, "gro_flush_us": 50}
    plain = run_experiment(
        ExperimentConfig(net_overrides=dict(over), **fd), cache=None
    )
    absorb = run_experiment(
        ExperimentConfig(
            net_overrides=dict(over, itr_absorb=True), **fd
        ),
        cache=None,
    )
    dup_plain = plain["steering"]["dup_acks_out"]
    dup_absorb = absorb["steering"]["dup_acks_out"]
    assert dup_plain > 0
    assert dup_absorb < dup_plain
    assert absorb.payload_get("offload")["itr_holds"] > 0


# ----------------------------------------------------------------------
# ITR coalescing sweep.
# ----------------------------------------------------------------------

def test_coalesce_overrides_validates_variant():
    assert coalesce_overrides(25, "baseline") == {"coalesce_us": 25}
    assert coalesce_overrides(25, "adaptive")["itr_adaptive"] is True
    assert coalesce_overrides(25, "absorb")["itr_absorb"] is True
    with pytest.raises(ValueError):
        coalesce_overrides(25, "turbo")


def test_coalesce_sweep_moves_fd_dup_acks():
    """The sweep's reason to exist: the ITR setting decides whether a
    Flow Director retarget race surfaces as reordering.  A short timer
    keeps the duplicate-ACK count down, a long timer lets it grow, and
    the absorb variant pulls the long-timer count back down."""
    sweep = run_coalesce_sweep(grid=(5, 100), variants=("baseline", "absorb"))
    dup = {
        key: r["steering"]["dup_acks_out"] for key, r in sweep.items()
    }
    assert dup[(5, "baseline")] < dup[(100, "baseline")]
    assert dup[(100, "absorb")] < dup[(100, "baseline")]
    # Absorb holds are the mechanism; they must actually have fired.
    assert sweep[(100, "absorb")].payload_get("offload")["itr_holds"] > 0
    text = render_coalesce_table(
        sweep, (5, 100), ("baseline", "absorb"), "rx", 8
    )
    assert "ITR coalescing sweep" in text
    assert "absorb" in text


def test_adaptive_itr_changes_the_reorder_window():
    """The adaptive throttle's bulk mode stretches the interrupt
    window (up to 4x base), so under the same retarget race it lets
    more reordering through than the static default."""
    sweep = run_coalesce_sweep(grid=(25,), variants=("baseline", "adaptive"))
    dup = {
        key: r["steering"]["dup_acks_out"] for key, r in sweep.items()
    }
    assert dup[(25, "adaptive")] > dup[(25, "baseline")]


# ----------------------------------------------------------------------
# Offload-vs-affinity acceptance: toe shrinks the paper's bins.
# ----------------------------------------------------------------------

def test_toe_shrinks_bins_vs_full_affinity_at_matched_load():
    """The PR's acceptance criterion.  At a matched offered load
    (saturation would hide the Interface bin: a host that never sleeps
    pays no sock_wait/wakeup cost), full transport offload must beat
    the best host-stack placement on the bins it removes work from:
    Copies (direct data placement), Interface (completion moderation)
    and Engine (protocol processing on the NIC)."""
    study = run_offload_study(warmup_ms=2, measure_ms=3)
    for direction in ("tx", "rx"):
        full = study[(direction, "full")]
        toe = study[(direction, "toe")]
        for bin in ("copies", "interface", "engine"):
            assert (
                bin_cycles_per_kb(toe, bin)
                < bin_cycles_per_kb(full, bin)
            ), "toe did not shrink %s/%s" % (direction, bin)
    text = render_offload_table(study, ("full", "toe"))
    assert "Offload study (TX)" in text
    assert "Offload study (RX)" in text
    # Every comparison cell in the delta column is a reduction.
    for line in text.splitlines():
        cells = [c.strip() for c in line.split("|")]
        if cells and cells[0] in ("Copies", "Interface", "Engine"):
            assert cells[-1].startswith("-"), line
