"""Checksum-offload ablation (paper section 2's NIC-offload theme)."""


from repro.apps.ttcp import TtcpWorkload
from repro.core.modes import apply_affinity
from repro.kernel.machine import Machine
from repro.net.params import NetParams
from repro.net.stack import NetworkStack

MS = 2_000_000


def run(mode, params, seed=27):
    machine = Machine(n_cpus=2, seed=seed)
    stack = NetworkStack(machine, params, n_connections=8, mode=mode,
                         message_size=65536)
    workload = TtcpWorkload(machine, stack, 65536)
    tasks = workload.spawn_all()
    apply_affinity(machine, stack, tasks, "full")
    machine.start()
    if mode == "rx":
        stack.start_peers()
    machine.run_for(10 * MS)
    machine.reset_measurement()
    machine.run_for(14 * MS)
    return machine, workload


class TestTxChecksumOffload:
    def test_offload_reduces_copy_instructions(self):
        from repro.cpu.events import INSTRUCTIONS

        rates = {}
        for offload in (False, True):
            machine, workload = run(
                "tx", NetParams(tx_csum_offload=offload)
            )
            copies = machine.accounting.per_bin()["copies"]
            rates[offload] = (
                copies[INSTRUCTIONS] / float(workload.total_bytes())
            )
        assert rates[True] < rates[False]

    def test_offload_gain_is_incremental(self):
        """Paper section 2: offloads give 'real but incremental'
        improvements -- measurable, far below the affinity gain."""
        tput = {}
        for offload in (False, True):
            _, workload = run("tx", NetParams(tx_csum_offload=offload))
            tput[offload] = workload.total_bytes()
        gain = tput[True] / tput[False] - 1.0
        assert 0.0 < gain < 0.15


class TestRxChecksumSoftware:
    def test_software_csum_costs_throughput(self):
        tput = {}
        for offload in (True, False):
            _, workload = run("rx", NetParams(rx_csum_offload=offload))
            tput[offload] = workload.total_bytes()
        assert tput[False] < tput[True]

    def test_software_csum_charged_to_copies(self):
        machine, _ = run("rx", NetParams(rx_csum_offload=False))
        fns = machine.accounting.per_function()
        assert "csum_partial" in fns
        assert fns["csum_partial"][0].bin == "copies"

    def test_csum_warms_payload_for_copy(self):
        """With software RX checksum, the later copy_to_user finds the
        payload warm: its MPI drops versus the offloaded case."""
        from repro.cpu.events import INSTRUCTIONS, LLC_MISSES

        mpi = {}
        for offload in (True, False):
            machine, _ = run("rx", NetParams(rx_csum_offload=offload))
            fns = machine.accounting.per_function()
            vec = fns["__copy_to_user"][1]
            mpi[offload] = vec[LLC_MISSES] / float(vec[INSTRUCTIONS])
        assert mpi[False] < mpi[True]
