"""Tests for the profiling layer: accounting, Oprofile view, procstat."""

import pytest

from repro.cpu.events import CYCLES, INSTRUCTIONS
from repro.prof.accounting import BinProfile, ExactAccounting
from repro.prof.oprofile import OprofileView
from repro.prof.procstat import ProcInterrupts


class FakeSpec:
    def __init__(self, name, bin):
        self.name = name
        self.bin = bin


def record(acct, cpu, spec, cycles=0, instructions=0, clears=0):
    acct.record(cpu, spec, cycles, instructions, 0, 0, 0, 0, 0, 0, 0, 0,
                clears)


class TestExactAccounting:
    def test_accumulates_per_cpu_and_function(self):
        acct = ExactAccounting()
        spec = FakeSpec("fn", "engine")
        record(acct, 0, spec, cycles=100, instructions=30)
        record(acct, 0, spec, cycles=50, instructions=10)
        record(acct, 1, spec, cycles=25, instructions=5)
        merged = acct.per_function()
        assert merged["fn"][1][CYCLES] == 175
        cpu0 = acct.per_function(cpu_index=0)
        assert cpu0["fn"][1][INSTRUCTIONS] == 40

    def test_per_bin(self):
        acct = ExactAccounting()
        record(acct, 0, FakeSpec("a", "engine"), cycles=10)
        record(acct, 0, FakeSpec("b", "copies"), cycles=20)
        bins = acct.per_bin()
        assert bins["engine"][CYCLES] == 10
        assert bins["copies"][CYCLES] == 20

    def test_idle_excluded_by_default(self):
        acct = ExactAccounting()
        record(acct, 0, FakeSpec("poll_idle", "other"), cycles=999)
        record(acct, 0, FakeSpec("fn", "engine"), cycles=1)
        assert acct.total()[CYCLES] == 1
        assert acct.total(include_idle=True)[CYCLES] == 1000

    def test_cpus_listing(self):
        acct = ExactAccounting()
        record(acct, 1, FakeSpec("fn", "engine"), cycles=1)
        record(acct, 0, FakeSpec("fn", "engine"), cycles=1)
        assert acct.cpus() == [0, 1]


class TestBinProfile:
    def make(self):
        acct = ExactAccounting()
        record(acct, 0, FakeSpec("a", "engine"), cycles=300, instructions=100)
        record(acct, 0, FakeSpec("b", "copies"), cycles=700, instructions=100)
        return BinProfile(acct.per_bin(), work_bits=1000)

    def test_pct_cycles(self):
        prof = self.make()
        assert prof.pct_cycles("engine") == pytest.approx(0.3)
        assert prof.pct_cycles("copies") == pytest.approx(0.7)

    def test_cpi(self):
        prof = self.make()
        assert prof.cpi("engine") == pytest.approx(3.0)
        assert prof.cpi() == pytest.approx(5.0)

    def test_events_per_work(self):
        prof = self.make()
        assert prof.events_per_work("engine", CYCLES) == pytest.approx(0.3)


class TestOprofileView:
    def make(self):
        acct = ExactAccounting()
        record(acct, 0, FakeSpec("hot", "engine"), cycles=100_000)
        record(acct, 0, FakeSpec("warm", "copies"), cycles=30_000)
        record(acct, 1, FakeSpec("cold", "driver"), cycles=4_000)
        return acct

    def test_samples_quantized_by_period(self):
        view = OprofileView(self.make(), period=10_000)
        samples = view.samples(CYCLES)
        assert samples["hot"] == 10
        assert samples["warm"] == 3
        assert "cold" not in samples  # below one period

    def test_per_cpu_view(self):
        view = OprofileView(self.make(), period=1000)
        cpu1 = view.samples(CYCLES, cpu_index=1)
        assert list(cpu1) == ["cold"]

    def test_top_sorted_with_percent(self):
        view = OprofileView(self.make(), period=1000)
        top = view.top(CYCLES, n=2)
        assert top[0][2] == "hot"
        assert top[0][1] > top[1][1]

    def test_report_format(self):
        view = OprofileView(self.make(), period=1000)
        out = view.report(CYCLES, "cycles", n=3)
        assert "samples" in out and "hot" in out

    def test_skid_moves_samples(self):
        acct = self.make()
        view = OprofileView(
            acct, period=1000, skid_fraction=0.5,
            skid_map={"hot": "warm"},
        )
        samples = view.samples(CYCLES)
        assert samples["hot"] == 50
        assert samples["warm"] == 80

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            OprofileView(ExactAccounting(), period=0)


class TestProcInterrupts:
    def test_counts_and_render(self):
        stat = ProcInterrupts(2)
        stat.register(0x19, "eth0")
        stat.count(0x19, 0)
        stat.count(0x19, 0)
        stat.count_ipi(1)
        assert stat.deliveries(0x19) == [2, 0]
        assert stat.total_device_interrupts() == 2
        assert stat.total_ipis() == 1
        out = stat.render()
        assert "eth0" in out and "rescheduling" in out

    def test_reset(self):
        stat = ProcInterrupts(2)
        stat.register(0x19, "eth0")
        stat.count(0x19, 1)
        stat.count_ipi(0)
        stat.reset()
        assert stat.total_device_interrupts() == 0
        assert stat.total_ipis() == 0

    def test_unregistered_vector_counts(self):
        stat = ProcInterrupts(2)
        stat.count(0x42, 1)
        assert stat.deliveries(0x42) == [0, 1]

    def test_reset_keeps_handed_out_ipi_row_alive(self):
        """reset must zero ``ipi_counts`` in place: a reference handed
        out before the measurement window has to keep observing the
        live row, not a pre-reset orphan."""
        stat = ProcInterrupts(2)
        row = stat.ipi_counts  # e.g. a dashboard holding the row
        stat.count_ipi(0)
        stat.reset()
        assert row == [0, 0]
        stat.count_ipi(1)
        assert row == [0, 1]
        assert row is stat.ipi_counts
