"""Tests for the VTune-style tuning assistant."""

from repro.cpu.params import CostModel
from repro.prof.tuning import analyze, render_advice


class TestAssistantOnRealRun:
    def test_flags_the_papers_culprits(self, tx_pair):
        none, _ = tx_pair
        advice = analyze(none, CostModel())
        metrics = {a.metric for a in advice}
        # The paper's two headline events must be flagged.
        assert "machine_clears" in metrics
        assert "llc_misses" in metrics

    def test_flags_pathological_bins(self, tx_pair):
        none, _ = tx_pair
        advice = analyze(none, CostModel())
        bins = {a.subject for a in advice if a.metric == "cpi"}
        # Locks (or interface) should appear as a poor-CPI bin.
        assert bins & {"locks", "interface", "overall"}

    def test_sorted_by_impact(self, tx_pair):
        none, _ = tx_pair
        advice = [a for a in analyze(none, CostModel())
                  if a.subject == "overall" and a.metric != "cpi"]
        values = [a.value for a in advice]
        assert values == sorted(values, reverse=True)

    def test_render(self, tx_pair):
        none, _ = tx_pair
        text = render_advice(analyze(none, CostModel()))
        assert "Tuning assistant" in text
        assert "Machine clears" in text or "cache misses" in text

    def test_render_empty(self):
        assert "no significant findings" in render_advice([])
