"""Unit tests for the run store: journal, locks, store, index, CLI.

The crash/resume *integration* path (SIGKILL a live study subprocess,
resume, byte-compare reports) lives in ``test_crash_resume.py``; here
each crash-safety mechanism is exercised in isolation.
"""

import errno
import json
import multiprocessing
import os
import signal
import socket
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.experiment import (
    ExperimentConfig,
    ResultCache,
    run_experiment,
)
from repro.core.parallel import SweepRunner, _terminate_workers
from repro.diagnose.saturation import SaturationSearch
from repro.runstore import (
    GracefulShutdown,
    LockHeldError,
    PidfileLock,
    RunJournal,
    RunStore,
    RunStoreError,
    ShutdownRequested,
    effective_status,
    query_cells,
    rebuild_index,
)
from repro.runstore.journal import decode_line, encode_record
from repro.runstore.store import list_runs

_RESULT = None


def _tiny_config(**overrides):
    base = dict(
        direction="tx",
        message_size=1024,
        affinity="none",
        n_connections=2,
        warmup_ms=1,
        measure_ms=2,
        seed=3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _tiny_result():
    """One shared seconds-scale result for store/journal tests."""
    global _RESULT
    if _RESULT is None:
        _RESULT = run_experiment(_tiny_config())
    return _RESULT


# ---------------------------------------------------------------------------
# Journal: checksummed append, replay, corrupt-tail recovery
# ---------------------------------------------------------------------------


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal.open(path)
        journal.append({"type": "cell", "key": "k1", "label": "a",
                        "payload": {"x": 1}})
        journal.append({"type": "wave", "wave": 1, "states": {}})
        journal.close()
        replayed = RunJournal.load(path)
        assert replayed.n_cells == 1
        assert replayed.cell_payload("k1") == {"x": 1}
        assert 1 in replayed.waves
        assert replayed.truncated_bytes == 0

    def test_decode_rejects_torn_and_garbled_lines(self):
        line = encode_record({"type": "cell", "key": "k"})
        raw = line.encode("utf-8")
        assert decode_line(raw) == {"type": "cell", "key": "k"}
        assert decode_line(raw[:-5]) is None  # no trailing newline
        assert decode_line(b"deadbeef0000 {\"broken\n") is None
        corrupt = bytearray(raw)
        corrupt[3] = ord("0") if corrupt[3] != ord("0") else ord("1")
        assert decode_line(bytes(corrupt)) is None
        assert decode_line(b"\xff\xfe garbage\n") is None

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal.open(path)
        journal.append({"type": "cell", "key": "k1", "payload": 1})
        journal.append({"type": "cell", "key": "k2", "payload": 2})
        journal.close()
        good_size = os.path.getsize(path)
        with open(path, "ab") as fh:  # a SIGKILL mid-append
            fh.write(b"0123456789ab {\"type\": \"cell\", \"key")
        with pytest.warns(RuntimeWarning, match="corrupt trailing"):
            recovered = RunJournal.open(path)
        recovered.close()
        assert len(recovered.records) == 2
        assert os.path.getsize(path) == good_size

    def test_mid_file_corruption_drops_suffix(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal.open(path)
        journal.append({"type": "cell", "key": "k1", "payload": 1})
        journal.close()
        with open(path, "ab") as fh:
            fh.write(b"not a record\n")
            fh.write(encode_record(
                {"type": "cell", "key": "k2", "payload": 2}
            ).encode("utf-8"))
        with pytest.warns(RuntimeWarning):
            recovered = RunJournal.open(path)
        recovered.close()
        # Records after a torn region cannot be trusted: replay stops
        # at the last good prefix.
        assert [r["key"] for r in recovered.records] == ["k1"]

    def test_enospc_degrades_to_memory_only(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = RunJournal.open(path)

        class FullDisk:
            def write(self, text):
                raise OSError(errno.ENOSPC, "No space left on device")

            def flush(self):
                pass

            def fileno(self):
                return -1

            def close(self):
                pass

        journal._fh = FullDisk()
        with pytest.warns(RuntimeWarning, match="no longer be resumed"):
            journal.append({"type": "cell", "key": "k1", "payload": 1})
        assert journal.degraded
        # Second append: silent (warn once), memory still ingests.
        journal.append({"type": "cell", "key": "k2", "payload": 2})
        assert journal.n_cells == 2
        journal.close()


# ---------------------------------------------------------------------------
# Pidfile lock: exclusion, stale reclamation, cross-host refusal
# ---------------------------------------------------------------------------


def _exit_immediately():
    pass


class TestPidfileLock:
    def test_acquire_release(self, tmp_path):
        path = str(tmp_path / "lock.pid")
        lock = PidfileLock(path)
        lock.acquire()
        pid, host = lock._read()
        assert pid == os.getpid()
        assert host == socket.gethostname()
        lock.release()
        assert not os.path.exists(path)

    def test_reentrant_same_pid(self, tmp_path):
        path = str(tmp_path / "lock.pid")
        PidfileLock(path).acquire()
        second = PidfileLock(path)
        second.acquire()  # our own pid: no error
        assert second.owned

    def test_live_pid_refused(self, tmp_path):
        path = str(tmp_path / "lock.pid")
        # pid 1 is always alive (os.kill(1, 0) -> EPERM counts as
        # alive); same hostname so the liveness probe applies.
        with open(path, "w") as fh:
            fh.write("1 %s\n" % socket.gethostname())
        with pytest.raises(LockHeldError, match="live pid 1"):
            PidfileLock(path).acquire()

    def test_stale_lock_reclaimed(self, tmp_path):
        proc = multiprocessing.Process(target=_exit_immediately)
        proc.start()
        proc.join()
        dead_pid = proc.pid
        path = str(tmp_path / "lock.pid")
        with open(path, "w") as fh:
            fh.write("%d %s\n" % (dead_pid, socket.gethostname()))
        with pytest.warns(RuntimeWarning, match="stale"):
            lock = PidfileLock(path).acquire()
        assert lock.owned
        pid, _ = lock._read()
        assert pid == os.getpid()

    def test_cross_host_never_reclaimed(self, tmp_path):
        path = str(tmp_path / "lock.pid")
        with open(path, "w") as fh:
            fh.write("99999999 some-other-host\n")
        with pytest.raises(LockHeldError, match="cross-host"):
            PidfileLock(path).acquire()

    def test_torn_lock_reclaimed(self, tmp_path):
        path = str(tmp_path / "lock.pid")
        with open(path, "w") as fh:
            fh.write("not-a-pid")
        with pytest.warns(RuntimeWarning):
            assert PidfileLock(path).acquire().owned


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------


class TestGracefulShutdown:
    def test_sigterm_raises_shutdown_requested(self):
        with pytest.raises(ShutdownRequested) as exc_info:
            with GracefulShutdown():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # never reached: the handler raises
        assert exc_info.value.signum == signal.SIGTERM
        assert exc_info.value.name == "SIGTERM"

    def test_is_base_exception(self):
        # The sweep's per-cell `except Exception` fault tolerance must
        # not swallow a shutdown.
        assert not issubclass(ShutdownRequested, Exception)

    def test_handlers_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before


# ---------------------------------------------------------------------------
# RunStore: manifest lifecycle, counters, artifacts, ENOSPC
# ---------------------------------------------------------------------------


class TestRunStore:
    def test_create_record_resume_replay(self, tmp_path):
        root = str(tmp_path)
        config = _tiny_config()
        result = _tiny_result()
        store = RunStore.create("sweep", args={"seed": 3}, root=root,
                                run_id="r1")
        assert store.lookup_cell(config) is None
        store.record_cell(config, result)
        assert store.executed == 1
        store.finalize("interrupted")

        resumed = RunStore.resume("r1", root=root)
        hit = resumed.lookup_cell(config)
        assert hit is not None
        assert resumed.replayed == 1
        assert hit.to_dict() == result.to_dict()  # bit-identical payload
        assert len(resumed.manifest["sessions"]) == 2
        resumed.finalize("completed")
        manifest = json.load(
            open(os.path.join(root, "r1", "manifest.json"))
        )
        assert manifest["status"] == "completed"
        assert manifest["sessions"][-1]["replayed"] == 1

    def test_explicit_run_id_collision(self, tmp_path):
        root = str(tmp_path)
        RunStore.create("sweep", root=root, run_id="dup").finalize(
            "completed")
        with pytest.raises(RunStoreError, match="already exists"):
            RunStore.create("sweep", root=root, run_id="dup")

    def test_concurrent_create_refused_by_lock(self, tmp_path):
        root = str(tmp_path)
        store = RunStore.create("sweep", root=root, run_id="live")
        # Simulate a second *process*: rewrite the pidfile with a live
        # foreign pid, then try to resume.
        with open(store.lock.path, "w") as fh:
            fh.write("1 %s\n" % socket.gethostname())
        with pytest.raises(LockHeldError):
            RunStore.resume("live", root=root)

    def test_effective_status_crashed(self, tmp_path):
        root = str(tmp_path)
        store = RunStore.create("sweep", root=root, run_id="dead")
        directory = store.directory
        # Simulate SIGKILL: lock left behind with a dead pid.
        proc = multiprocessing.Process(target=_exit_immediately)
        proc.start()
        proc.join()
        with open(store.lock.path, "w") as fh:
            fh.write("%d %s\n" % (proc.pid, socket.gethostname()))
        manifest = json.load(
            open(os.path.join(directory, "manifest.json"))
        )
        assert manifest["status"] == "running"
        assert effective_status(directory, manifest) == "crashed"

    def test_wave_records_idempotent(self, tmp_path):
        store = RunStore.create("diagnose", root=str(tmp_path),
                                run_id="w")
        store.record_wave(1, {"rx/none": {"phase": "bisect"}})
        store.record_wave(1, {"rx/none": {"phase": "different"}})
        assert len(store.journal.records) == 1
        store.finalize("completed")

    def test_artifact_enospc_warns_and_continues(self, tmp_path,
                                                 monkeypatch):
        store = RunStore.create("sweep", root=str(tmp_path), run_id="a")

        def full_disk(path, text, durable=True):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.runstore.store.atomic_write_text",
                            full_disk)
        with pytest.warns(RuntimeWarning, match="continuing degraded"):
            store.write_artifact("report.txt", "hello")
        # Still finalizes cleanly (manifest path is unaffected).
        monkeypatch.undo()
        store.finalize("completed")
        assert store.status == "completed"


# ---------------------------------------------------------------------------
# ResultCache.put degrades on disk errors (satellite)
# ---------------------------------------------------------------------------


class TestCachePutDegradation:
    def test_mkstemp_failure_keeps_memory_entry(self, tmp_path,
                                                monkeypatch):
        cache = ResultCache(str(tmp_path / "cache"))
        config = _tiny_config()
        result = _tiny_result()

        def full_disk(*args, **kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.core.experiment.tempfile.mkstemp",
                            full_disk)
        with pytest.warns(RuntimeWarning, match="in-memory caching"):
            cache.put(config, result)
        assert cache.get(config) is result  # memory layer survived
        # Warn-once: a second failing put is silent.
        import warnings as warnings_mod
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            cache.put(config, result)

    def test_write_failure_removes_tempfile(self, tmp_path,
                                            monkeypatch):
        directory = tmp_path / "cache"
        cache = ResultCache(str(directory))

        def full_disk(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.core.experiment.os.replace",
                            full_disk)
        with pytest.warns(RuntimeWarning):
            cache.put(_tiny_config(), _tiny_result())
        assert not any(
            name.endswith(".part") for name in os.listdir(directory)
        )


# ---------------------------------------------------------------------------
# SweepRunner integration: journal replay and worker reaping
# ---------------------------------------------------------------------------


def _sleep_forever():
    time.sleep(600)


class TestRunnerJournal:
    def test_journal_hit_skips_execution(self, tmp_path, monkeypatch):
        root = str(tmp_path)
        config = _tiny_config()
        store = RunStore.create("sweep", root=root, run_id="j")
        runner = SweepRunner(jobs=1, journal=store)
        first = runner.run([config])[0]
        assert store.executed == 1
        store.finalize("interrupted")

        resumed = RunStore.resume("j", root=root)

        def boom(*args, **kwargs):
            raise AssertionError("journaled cell was re-executed")

        monkeypatch.setattr("repro.core.parallel.run_experiment", boom)
        runner2 = SweepRunner(jobs=1, journal=resumed)
        second = runner2.run([config])[0]
        assert second.to_dict() == first.to_dict()
        assert resumed.replayed == 1
        assert resumed.executed == 0
        resumed.finalize("completed")

    def test_terminate_workers_reaps_pids(self):
        executor = ProcessPoolExecutor(max_workers=2)
        executor.submit(_sleep_forever)
        executor.submit(_sleep_forever)
        # Let both workers spawn.
        deadline = time.monotonic() + 10
        while (len(executor._processes) < 2
               and time.monotonic() < deadline):
            time.sleep(0.05)
        pids = [p.pid for p in executor._processes.values()]
        # _terminate_workers owns the shutdown: it must snapshot the
        # worker list before shutdown() drops executor._processes.
        reaped = _terminate_workers(executor)
        assert set(reaped) == set(pids)
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # no leaked live processes


# ---------------------------------------------------------------------------
# SaturationSearch checkpointing
# ---------------------------------------------------------------------------


class TestSearchState:
    def test_state_roundtrip(self):
        result = _tiny_result()
        search = SaturationSearch(_tiny_config(), steps=2)
        search.observe(result)  # ceiling probe
        search.next_config()
        search.observe(result)  # first bisection probe
        state = json.loads(json.dumps(search.state_dict()))

        clone = SaturationSearch(_tiny_config(), steps=2)
        clone.load_state(state)
        assert clone.phase == search.phase
        assert clone.probes == search.probes
        assert clone._lo == search._lo and clone._hi == search._hi
        assert clone.state_dict() == search.state_dict()
        # The restored search continues identically.
        assert (clone.next_config().to_dict()
                == search.next_config().to_dict())


# ---------------------------------------------------------------------------
# Index + runs CLI (list/show/query/gc) on synthetic runs
# ---------------------------------------------------------------------------


def _make_run(root, run_id, status="completed"):
    store = RunStore.create("scale", args={"seed": 7}, root=root,
                            run_id=run_id)
    store.record_cell(_tiny_config(), _tiny_result())
    store.write_artifact("report.txt", "report for %s\n" % run_id)
    store.finalize(status)
    return store


class TestIndexAndCli:
    def test_rebuild_and_query(self, tmp_path):
        root = str(tmp_path)
        _make_run(root, "r1")
        _make_run(root, "r2", status="incomplete")
        n_runs, n_cells = rebuild_index(root)
        assert (n_runs, n_cells) == (2, 2)
        rows = query_cells(root=root, mode="none", size=1024)
        assert {row["run_id"] for row in rows} == {"r1", "r2"}
        assert all(row["throughput_gbps"] > 0 for row in rows)
        assert query_cells(root=root, mode="rss") == []
        only_done = query_cells(root=root, status="completed")
        assert {row["run_id"] for row in only_done} == {"r1"}

    def test_runs_cli_list_show_query(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path)
        _make_run(root, "r1")
        assert main(["runs", "--root", root, "list"]) == 0
        out = capsys.readouterr().out
        assert "r1" in out and "completed" in out
        assert main(["runs", "--root", root, "show", "r1"]) == 0
        out = capsys.readouterr().out
        assert "report.txt" in out
        assert main(["runs", "--root", root, "query",
                     "--mode", "none"]) == 0
        assert "r1" in capsys.readouterr().out
        assert main(["runs", "--root", root, "show", "nope"]) == 2

    def test_runs_gc_keeps_newest(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path)
        for i in range(3):
            _make_run(root, "r%d" % i)
            time.sleep(0.02)  # distinct created stamps for ordering
        assert main(["runs", "--root", root, "gc", "--keep", "1"]) == 0
        kept = [run_id for run_id, _, _ in list_runs(root)]
        assert kept == ["r2"]

    def test_query_sql_rejects_non_select(self, tmp_path):
        from repro.runstore.index import query_sql

        root = str(tmp_path)
        _make_run(root, "r1")
        rebuild_index(root)
        with pytest.raises(ValueError):
            query_sql("DELETE FROM runs", root=root)
        rows = query_sql("SELECT run_id FROM runs", root=root)
        assert rows == [{"run_id": "r1"}]
