"""The multi-queue scaling study: sweep grid, tables, CLI."""

import pytest

from repro.cli import main
from repro.core.metrics import run_size_sweep
from repro.core.report import render_scale_table
from repro.core.scale import run_scale_sweep, scaling_efficiency

CPUS = (2, 4)
SIZES = (16384,)
MODES = ("rss", "flow-director")


@pytest.fixture(scope="module")
def sweep():
    # The same cells the CLI smoke below hits, kept tiny: 2x1x2 grid,
    # 2ms/3ms windows (cache-shared with the golden suite's settings).
    return run_scale_sweep(
        "rx", cpus=CPUS, sizes=SIZES, modes=MODES,
        n_queues=4, n_connections=8,
        warmup_ms=2, measure_ms=3, seed=7,
    )


class TestSweep:
    def test_grid_is_complete(self, sweep):
        assert sorted(sweep) == sorted(
            (c, s, m) for c in CPUS for s in SIZES for m in MODES
        )
        assert all(r is not None for r in sweep.values())

    def test_throughput_grows_with_cpus(self, sweep):
        for mode in MODES:
            small = sweep[(2, 16384, mode)].throughput_gbps
            big = sweep[(4, 16384, mode)].throughput_gbps
            assert big > small > 0

    def test_cells_carry_steering_metrics(self, sweep):
        for (_, _, mode), result in sweep.items():
            steering = result.to_dict()["steering"]
            assert steering["n_queues"] == 4
            assert steering["flow_director"] == (mode == "flow-director")
            assert sum(steering["rx_steered"]) > 0


class TestEfficiency:
    def test_baseline_is_one(self, sweep):
        eff = scaling_efficiency(sweep, SIZES, CPUS, "rss")
        assert eff[16384][0] == pytest.approx(1.0)
        assert 0.0 < eff[16384][1] <= 1.5

    def test_missing_cells_are_none(self):
        partial = {(2, 16384, "rss"): None}
        eff = scaling_efficiency(partial, SIZES, (2, 4), "rss")
        assert eff[16384] == [None, None]

    def test_unsorted_cpus_normalize_against_smallest(self, sweep):
        # --cpus 4 2 must still use the 2-CPU machine as the baseline
        # (min(cpus)), not whichever size was listed first.
        eff = scaling_efficiency(sweep, SIZES, (4, 2), "rss")
        assert eff[16384][1] == pytest.approx(1.0)
        assert eff[16384][0] == pytest.approx(
            scaling_efficiency(sweep, SIZES, CPUS, "rss")[16384][1]
        )


class TestDedupe:
    SMALL = dict(n_connections=2, warmup_ms=1, measure_ms=2, seed=7)

    def test_scale_sweep_collapses_duplicate_cells(self):
        with pytest.warns(RuntimeWarning, match="duplicate sweep cells"):
            sweep = run_scale_sweep(
                "rx", cpus=(2, 2), sizes=(16384,), modes=("rss",),
                n_queues=2, **self.SMALL
            )
        assert list(sweep) == [(2, 16384, "rss")]
        assert sweep[(2, 16384, "rss")] is not None

    def test_size_sweep_collapses_duplicate_cells(self):
        with pytest.warns(RuntimeWarning, match="duplicate sweep cells"):
            sweep = run_size_sweep(
                "rx", sizes=(4096, 4096), modes=("none",), **self.SMALL
            )
        assert list(sweep) == [(4096, "none")]
        assert sweep[(4096, "none")] is not None


class TestRender:
    def test_table_mentions_every_cell(self, sweep):
        text = render_scale_table(sweep, CPUS, SIZES, MODES, "rx", 4)
        assert "rss" in text and "flow-director" in text
        assert "GHz/Gbps" in text
        assert "reorder" in text

    def test_failed_cells_render_as_fail(self, sweep):
        broken = dict(sweep)
        broken[(4, 16384, "rss")] = None
        text = render_scale_table(broken, CPUS, SIZES, MODES, "rx", 4)
        assert "FAIL" in text or "--" in text


class TestCli:
    def test_scale_smoke(self, capsys):
        rc = main([
            "scale", "--cpus", "2", "--sizes", "16384",
            "--modes", "rss", "--queues", "4", "--connections", "8",
            "--warmup-ms", "2", "--measure-ms", "3", "--seed", "7",
            "--jobs", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "throughput Mb/s" in out
        assert "scaling efficiency" in out

    def test_scale_rejects_unknown_mode(self, capsys):
        rc = main(["scale", "--modes", "bogus"])
        assert rc == 2
        assert "unknown steering mode" in capsys.readouterr().err

    def test_scale_rejects_connections_below_queues(self, capsys):
        rc = main([
            "scale", "--queues", "8", "--connections", "4",
        ])
        assert rc == 2
        assert "below --queues" in capsys.readouterr().err

    def test_scale_connections_axis_smoke(self, capsys):
        rc = main([
            "scale", "--cpus", "2", "--sizes", "16384",
            "--modes", "rss", "--queues", "4",
            "--connections", "8", "1000",
            "--warmup-ms", "1", "--measure-ms", "2", "--seed", "7",
            "--jobs", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cpus x flows" in out
        assert "2 x 1000" in out
        assert "simulation resources per cell" in out
        # The large population ran class-aggregated (auto).
        assert "4/1000" in out
        assert "1000 flows" in out  # per-population efficiency lines
