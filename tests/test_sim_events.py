"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.events import EventQueue, SimulationEngine


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(30, lambda: fired.append(30))
        q.schedule(10, lambda: fired.append(10))
        q.schedule(20, lambda: fired.append(20))
        while True:
            ev = q.pop()
            if ev is None:
                break
            ev.callback()
        assert fired == [10, 20, 30]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        fired = []
        for tag in ("a", "b", "c"):
            q.schedule(5, lambda t=tag: fired.append(t))
        while q.pop() is not None:
            pass
        # Pop order is deterministic; verify by re-running with callbacks.
        q2 = EventQueue()
        for tag in ("a", "b", "c"):
            q2.schedule(5, lambda t=tag: fired.append(t))
        while True:
            ev = q2.pop()
            if ev is None:
                break
            ev.callback()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        ev = q.schedule(10, lambda: None)
        q.schedule(20, lambda: None)
        ev.cancel()
        assert q.pop().time == 20
        assert q.pop() is None

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        ev = q.schedule(10, lambda: None)
        q.schedule(20, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(10, lambda: None)
        q.schedule(25, lambda: None)
        ev.cancel()
        assert q.peek_time() == 25

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1, lambda: None)

    def test_len_is_counter_not_scan(self):
        q = EventQueue()
        events = [q.schedule(t, lambda: None) for t in range(10)]
        assert len(q) == 10
        for ev in events[:4]:
            ev.cancel()
        assert len(q) == 6
        # Double-cancel must not double-decrement.
        events[0].cancel()
        assert len(q) == 6

    def test_cancel_after_pop_does_not_corrupt_len(self):
        q = EventQueue()
        ev = q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        assert q.pop() is ev
        ev.cancel()  # already fired; must be a no-op for the counter
        assert len(q) == 1
        assert q.pop().time == 2
        assert len(q) == 0

    def test_mass_cancellation_compacts_storage(self):
        q = EventQueue()
        events = [q.schedule(t, lambda: None) for t in range(200)]
        for ev in events[:150]:
            ev.cancel()
        assert len(q) == 50
        # Opportunistic compaction bounds the cancelled debris: the
        # physical store never grows past twice the live count.
        assert q.physical_size() <= 2 * len(q)
        assert q.physical_size() < 200

    def test_compaction_drops_empty_buckets(self):
        q = EventQueue()
        keep = q.schedule(7, lambda: None)
        doomed = [q.schedule(t, lambda: None) for t in range(100, 300)]
        for ev in doomed:
            ev.cancel()
        assert len(q) == 1
        # Compaction stops below COMPACT_MIN; debris is bounded by it.
        assert q.physical_size() <= EventQueue.COMPACT_MIN
        assert q.pop() is keep
        assert q.pop() is None

    def test_pop_epoch_returns_same_time_run(self):
        q = EventQueue()
        a = q.schedule(5, lambda: None, label="a")
        b = q.schedule(5, lambda: None, label="b")
        q.schedule(9, lambda: None, label="c")
        batch = q.pop_epoch()
        assert batch == [a, b]
        assert len(q) == 1
        assert q.peek_time() == 9

    def test_pop_epoch_respects_until(self):
        q = EventQueue()
        q.schedule(50, lambda: None)
        assert q.pop_epoch(until=49) is None
        assert len(q) == 1
        assert len(q.pop_epoch(until=50)) == 1

    def test_pop_epoch_skips_cancelled_members(self):
        q = EventQueue()
        a = q.schedule(5, lambda: None)
        b = q.schedule(5, lambda: None)
        c = q.schedule(5, lambda: None)
        b.cancel()
        assert q.pop_epoch() == [a, c]
        assert len(q) == 0
        assert q.physical_size() == 0

    def test_restore_precedes_later_same_time_schedules(self):
        q = EventQueue()
        a = q.schedule(5, lambda: None, label="a")
        b = q.schedule(5, lambda: None, label="b")
        batch = q.pop_epoch()
        assert batch == [a, b]
        # A callback of ``a`` schedules another event at t=5...
        c = q.schedule(5, lambda: None, label="c")
        # ...then the loop is interrupted before ``b`` fires.
        q.restore(batch[1:])
        assert q.pop() is b
        assert q.pop() is c

    def test_pop_order_survives_compaction(self):
        q = EventQueue()
        events = [q.schedule(t, lambda: None) for t in range(200)]
        for ev in events[0:200:2]:
            ev.cancel()
        popped = []
        while True:
            ev = q.pop()
            if ev is None:
                break
            popped.append(ev.time)
        assert popped == list(range(1, 200, 2))


class TestSimulationEngine:
    def test_clock_follows_events(self):
        eng = SimulationEngine()
        times = []
        eng.schedule_at(100, lambda: times.append(eng.now))
        eng.schedule_at(50, lambda: times.append(eng.now))
        eng.run()
        assert times == [50, 100]
        assert eng.now == 100

    def test_schedule_after_is_relative(self):
        eng = SimulationEngine()
        seen = []

        def first():
            eng.schedule_after(7, lambda: seen.append(eng.now))

        eng.schedule_at(10, first)
        eng.run()
        assert seen == [17]

    def test_run_until_leaves_future_events(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule_at(5, lambda: seen.append(5))
        eng.schedule_at(500, lambda: seen.append(500))
        fired = eng.run(until=100)
        assert fired == 1
        assert seen == [5]
        assert eng.now == 100
        eng.run()
        assert seen == [5, 500]

    def test_cannot_schedule_in_past(self):
        eng = SimulationEngine()
        eng.schedule_at(10, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule_at(5, lambda: None)

    def test_stop_exits_loop(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule_at(1, lambda: (seen.append(1), eng.stop()))
        eng.schedule_at(2, lambda: seen.append(2))
        eng.run()
        assert seen == [1]

    def test_max_events_guard(self):
        eng = SimulationEngine()

        def reschedule():
            eng.schedule_after(1, reschedule)

        eng.schedule_at(0, reschedule)
        fired = eng.run(max_events=25)
        assert fired == 25

    def test_run_until_advances_clock_when_queue_drains(self):
        # Regression: the horizon advance used to be conditional on a
        # beyond-horizon event remaining queued, so run(until=...) over
        # a drained queue left ``now`` at the last fired event and gave
        # different run_for semantics than a non-empty queue.
        eng = SimulationEngine()
        eng.schedule_at(5, lambda: None)
        fired = eng.run(until=100)
        assert fired == 1
        assert eng.now == 100

    def test_run_until_advances_clock_on_empty_queue(self):
        eng = SimulationEngine()
        fired = eng.run(until=50)
        assert fired == 0
        assert eng.now == 50

    def test_stop_exit_does_not_advance_to_horizon(self):
        eng = SimulationEngine()
        eng.schedule_at(5, lambda: eng.stop())
        eng.run(until=100)
        assert eng.now == 5

    def test_max_events_exit_does_not_advance_to_horizon(self):
        eng = SimulationEngine()
        eng.schedule_at(5, lambda: None)
        eng.schedule_at(7, lambda: None)
        fired = eng.run(until=100, max_events=1)
        assert fired == 1
        assert eng.now == 5
        # The unfired event survives and the next run picks it up.
        assert eng.run(until=100) == 1
        assert eng.now == 100

    def test_stop_mid_epoch_restores_remaining_events(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule_at(5, lambda: (seen.append("a"), eng.stop()))
        eng.schedule_at(5, lambda: seen.append("b"))
        eng.schedule_at(5, lambda: seen.append("c"))
        eng.run()
        assert seen == ["a"]
        assert len(eng.queue) == 2
        eng.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_schedule_during_epoch_fires_in_order(self):
        eng = SimulationEngine()
        seen = []

        def first():
            seen.append("first")
            eng.schedule_at(5, lambda: seen.append("late"))

        eng.schedule_at(5, first)
        eng.schedule_at(5, lambda: seen.append("second"))
        eng.run()
        assert seen == ["first", "second", "late"]
        assert eng.now == 5

    def test_cancel_mid_epoch_skips_member(self):
        eng = SimulationEngine()
        seen = []
        holder = {}

        def first():
            seen.append("first")
            holder["b"].cancel()

        eng.schedule_at(5, first)
        holder["b"] = eng.schedule_at(5, lambda: seen.append("b"))
        eng.schedule_at(5, lambda: seen.append("c"))
        eng.run()
        assert seen == ["first", "c"]

    def test_events_fired_accumulates(self):
        eng = SimulationEngine()
        eng.schedule_at(1, lambda: None)
        eng.schedule_at(2, lambda: None)
        eng.run()
        assert eng.events_fired == 2
