"""Property-based tests for the simulation engine and scheduler."""

from hypothesis import given, settings, strategies as st

from repro.kernel.scheduler import Scheduler, SchedulerParams
from repro.kernel.task import Task, full_mask
from repro.sim.events import SimulationEngine


class TestEngineProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    max_size=80))
    def test_events_fire_in_time_order(self, times):
        engine = SimulationEngine()
        fired = []
        for t in times:
            engine.schedule_at(t, lambda t=t: fired.append(t))
        engine.run()
        assert fired == sorted(times)
        assert len(fired) == len(times)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=60),
           st.integers(min_value=0, max_value=10_000))
    def test_run_until_splits_cleanly(self, times, cutoff):
        engine = SimulationEngine()
        fired = []
        for t in times:
            engine.schedule_at(t, lambda t=t: fired.append(t))
        engine.run(until=cutoff)
        assert fired == sorted(t for t in times if t <= cutoff)
        engine.run()
        assert sorted(fired) == sorted(times)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=5000),
                              st.booleans()),
                    max_size=60))
    def test_cancelled_events_never_fire(self, entries):
        engine = SimulationEngine()
        fired = []
        events = []
        for t, cancel in entries:
            ev = engine.schedule_at(t, lambda t=t: fired.append(t))
            events.append((ev, t, cancel))
        for ev, _, cancel in events:
            if cancel:
                ev.cancel()
        engine.run()
        expected = sorted(t for _, t, cancel in events if not cancel)
        assert fired == expected


def make_task(i, n_cpus=2, mask=None):
    task = Task("t%d" % i, lambda ctx: iter(()),
                cpus_allowed=mask or full_mask(n_cpus))
    return task


class TestSchedulerProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.sampled_from(
        ["enq0", "enq1", "pick0", "pick1", "bal0", "bal1", "wake0", "wake1"]
    ), max_size=60))
    def test_no_task_lost_or_duplicated(self, ops):
        """Across any sequence of scheduler operations, every task is
        in exactly one place: a runqueue, running, or 'out' (picked)."""
        sched = Scheduler(2, SchedulerParams())
        tasks = []
        out = []
        counter = [0]

        def new_task():
            task = make_task(counter[0])
            counter[0] += 1
            tasks.append(task)
            return task

        for op in ops:
            cpu = int(op[-1])
            if op.startswith("enq"):
                sched.enqueue(new_task(), cpu)
            elif op.startswith("pick"):
                task = sched.pick_next(cpu)
                if task is not None:
                    out.append(task)
            elif op.startswith("bal"):
                sched.balance(cpu)
            elif op.startswith("wake"):
                task = new_task()
                task.prev_cpu = 1 - cpu
                sched.wake(task, waker_cpu=cpu, now=0)
            # Invariant: every created task is either queued once or out.
            queued = sched.runqueues[0] + sched.runqueues[1]
            assert len(queued) + len(out) == len(tasks)
            assert len(set(queued)) == len(queued)  # no duplicates
            for q, queue in enumerate(sched.runqueues):
                for task in queue:
                    assert task.allowed_on(q)

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=2, max_value=4),
        st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                 max_size=20),
        st.integers(min_value=0, max_value=3),
    )
    def test_wake_always_lands_in_mask(self, n_cpus, masks, waker):
        sched = Scheduler(n_cpus, SchedulerParams())
        waker = waker % n_cpus
        for i, seed in enumerate(masks):
            mask = (seed % ((1 << n_cpus) - 1)) + 1
            task = make_task(i, n_cpus, mask=mask)
            task.prev_cpu = seed % n_cpus
            decision = sched.wake(task, waker_cpu=waker, now=0)
            assert task.allowed_on(decision.target_cpu)
            assert task in sched.runqueues[decision.target_cpu]
