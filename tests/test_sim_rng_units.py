"""Unit tests for RNG streams and unit conversions."""

import pytest

from repro.sim.rng import RngStreams
from repro.sim.units import (
    CYCLES_PER_SECOND_2GHZ,
    bits_to_bytes,
    bytes_to_bits,
    cycles_to_seconds,
    gbps,
    ghz_per_gbps,
    mbps,
    microseconds_to_cycles,
    seconds_to_cycles,
)


class TestRngStreams:
    def test_same_seed_same_streams(self):
        a = RngStreams(42).stream("scheduler")
        b = RngStreams(42).stream("scheduler")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RngStreams(42)
        s1 = streams.stream("nic0")
        s2 = streams.stream("nic1")
        assert [s1.random() for _ in range(5)] != [s2.random() for _ in range(5)]

    def test_request_order_does_not_matter(self):
        f1 = RngStreams(7)
        f2 = RngStreams(7)
        a_first = f1.stream("a").random()
        f2.stream("b")
        a_second = f2.stream("a").random()
        assert a_first == a_second

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_is_independent_of_parent(self):
        parent = RngStreams(42)
        child = parent.spawn("worker")
        assert parent.stream("a").random() != child.stream("a").random()


class TestUnits:
    def test_bits_bytes_roundtrip(self):
        assert bytes_to_bits(128) == 1024
        assert bits_to_bytes(1024) == 128

    def test_cycles_seconds_roundtrip(self):
        cycles = seconds_to_cycles(0.25)
        assert cycles == CYCLES_PER_SECOND_2GHZ // 4
        assert cycles_to_seconds(cycles) == pytest.approx(0.25)

    def test_microseconds(self):
        assert microseconds_to_cycles(1) == 2000

    def test_gbps(self):
        # 1 GB moved in one second at 2 GHz.
        bytes_moved = 10 ** 9
        assert gbps(bytes_moved, CYCLES_PER_SECOND_2GHZ) == pytest.approx(8.0)
        assert mbps(bytes_moved, CYCLES_PER_SECOND_2GHZ) == pytest.approx(8000.0)

    def test_gbps_empty_window(self):
        assert gbps(100, 0) == 0.0

    def test_ghz_per_gbps_is_cycles_per_bit(self):
        # 2 cycles per bit == 2 GHz/Gbps.
        assert ghz_per_gbps(busy_cycles=2048, bytes_transferred=128) == pytest.approx(2.0)

    def test_ghz_per_gbps_no_work(self):
        assert ghz_per_gbps(1000, 0) == float("inf")
