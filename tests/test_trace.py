"""Tests for the trace-event observability layer."""

import json

import pytest

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.report import render_trace_crosscheck
from repro.kernel.machine import Machine
from repro.trace import (
    EVENT_NAMES,
    LatencyStats,
    TraceOptions,
    Tracer,
    counts_by_name,
    irq_to_copy_latencies,
    irq_to_softirq_latencies,
    migration_count,
    per_cpu_counts,
    per_cpu_timeline,
    render_timeline,
    summarize,
    to_chrome_trace,
    to_flamegraph,
    top_producers,
    write_chrome_trace,
    write_flamegraph,
)
from repro.trace.tracer import TraceEvent


class FakeEngine:
    def __init__(self):
        self.now = 0


class TestRingBuffer:
    def test_bounded_drop_oldest(self):
        tracer = Tracer(FakeEngine(), capacity=4)
        for i in range(10):
            tracer.emit("irq_raise", cpu=0, ts=i, vector=0x19)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        # The survivors are the newest four, in order.
        assert [e.ts for e in tracer.events()] == [6, 7, 8, 9]

    def test_no_drops_under_capacity(self):
        tracer = Tracer(FakeEngine(), capacity=16)
        for i in range(10):
            tracer.emit("irq_raise", cpu=0, ts=i)
        assert tracer.dropped == 0
        assert len(tracer) == 10

    def test_clear_resets_counters(self):
        tracer = Tracer(FakeEngine(), capacity=2)
        for i in range(5):
            tracer.emit("skb_alloc", cpu=0, ts=i)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0
        assert tracer.dropped == 0

    def test_default_ts_is_engine_clock(self):
        engine = FakeEngine()
        engine.now = 42
        tracer = Tracer(engine)
        tracer.emit("skb_free", cpu=1)
        assert tracer.events()[0].ts == 42

    def test_event_filter(self):
        tracer = Tracer(FakeEngine(), events=("irq_entry",))
        tracer.emit("irq_entry", cpu=0, ts=1)
        tracer.emit("skb_alloc", cpu=0, ts=2)
        assert [e.name for e in tracer.events()] == ["irq_entry"]
        assert tracer.emitted == 1  # filtered emits are free

    def test_sorted_by_ts_then_seq(self):
        tracer = Tracer(FakeEngine())
        tracer.emit("irq_raise", cpu=0, ts=5)
        tracer.emit("irq_entry", cpu=0, ts=3)
        tracer.emit("irq_exit", cpu=0, ts=5)
        assert [e.name for e in tracer.events()] == [
            "irq_entry", "irq_raise", "irq_exit"
        ]


class TestTraceOptions:
    def test_coerce_none_and_false(self):
        assert TraceOptions.coerce(None) is None
        assert TraceOptions.coerce(False) is None

    def test_coerce_true_defaults(self):
        options = TraceOptions.coerce(True)
        assert options.capacity == TraceOptions.DEFAULT_CAPACITY
        assert options.events is None

    def test_coerce_int_is_capacity(self):
        assert TraceOptions.coerce(128).capacity == 128

    def test_coerce_dict(self):
        options = TraceOptions.coerce(
            {"capacity": 64, "events": ["ipi_recv"]}
        )
        assert options.capacity == 64
        assert options.events == ("ipi_recv",)

    def test_coerce_passthrough(self):
        options = TraceOptions(capacity=32)
        assert TraceOptions.coerce(options) is options

    def test_rejects_unknown_events(self):
        with pytest.raises(ValueError):
            TraceOptions(events=("not_a_tracepoint",))

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceOptions(capacity=0)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            TraceOptions.coerce("yes")

    def test_event_vocabulary_covers_spans(self):
        for prefix in ("irq", "softirq"):
            assert prefix + "_entry" in EVENT_NAMES
            assert prefix + "_exit" in EVENT_NAMES


def _ev(ts, name, cpu, **args):
    return TraceEvent(ts, ts, name, cpu, args)


class TestAnalyses:
    def test_latency_stats_percentiles(self):
        stats = LatencyStats(range(1, 101))
        assert stats.count == 100
        assert stats.min == 1
        assert stats.max == 100
        assert stats.percentile(50) in (50, 51)  # nearest rank
        assert stats.percentile(0) == 1
        assert stats.percentile(100) == 100
        d = stats.to_dict()
        assert d["p90"] == 90

    def test_latency_stats_empty(self):
        stats = LatencyStats([])
        assert stats.count == 0
        assert stats.percentile(99) == 0
        assert "n=0" in stats.render("t")

    def test_irq_to_softirq_matching(self):
        events = [
            _ev(10, "irq_entry", 0, vector=0x19),
            _ev(12, "irq_entry", 0, vector=0x1A),
            _ev(20, "softirq_entry", 0, softirq="NET_RX"),
            # Different CPU: not matched by CPU0's softirq pass.
            _ev(15, "irq_entry", 1, vector=0x1B),
            _ev(40, "softirq_entry", 1, softirq="NET_RX"),
            # Non-NET_RX pass does not drain pending IRQs.
            _ev(50, "irq_entry", 0, vector=0x19),
            _ev(55, "softirq_entry", 0, softirq="NET_TX"),
        ]
        samples = irq_to_softirq_latencies(sorted(events,
                                                  key=lambda e: e.ts))
        assert sorted(samples) == [8, 10, 25]

    def test_irq_to_copy_matching(self):
        events = [
            _ev(10, "irq_entry", 0, vector=0x19),
            _ev(30, "copy_to_user", 1, vector=0x19, bytes=4096),
            # Second copy from the same batch: not an IRQ latency.
            _ev(35, "copy_to_user", 1, vector=0x19, bytes=4096),
        ]
        assert irq_to_copy_latencies(events) == [20]

    def test_per_cpu_timeline_shape(self):
        events = [_ev(t, "skb_alloc", t % 2) for t in range(100)]
        t0, width, matrix = per_cpu_timeline(events, 2, buckets=10)
        assert t0 == 0
        assert len(matrix) == 2 and len(matrix[0]) == 10
        assert sum(sum(row) for row in matrix) == 100
        text = render_timeline(events, 2, buckets=10)
        assert "CPU0" in text and "CPU1" in text

    def test_counts_and_producers(self):
        events = [_ev(1, "ipi_recv", 1), _ev(2, "ipi_recv", 1),
                  _ev(3, "sched_migrate", 0, task="t")]
        assert counts_by_name(events) == {
            "ipi_recv": 2, "sched_migrate": 1
        }
        assert top_producers(events, n=1) == [(("ipi_recv", 1), 2)]
        assert per_cpu_counts(events, "ipi_recv", 2) == [0, 2]
        assert migration_count(events) == 1


class TestExporters:
    EVENTS = [
        _ev(10, "irq_entry", 0, vector=0x19),
        _ev(30, "irq_exit", 0, vector=0x19),
        _ev(40, "softirq_entry", 0, softirq="NET_RX"),
        _ev(90, "softirq_exit", 0, softirq="NET_RX"),
        _ev(50, "ipi_recv", 1),
    ]

    def test_chrome_trace_structure(self):
        doc = to_chrome_trace(sorted(self.EVENTS, key=lambda e: e.ts))
        phases = [r["ph"] for r in doc["traceEvents"]]
        assert phases.count("B") == 2 and phases.count("E") == 2
        assert phases.count("i") == 1
        spans = [r for r in doc["traceEvents"] if r["ph"] == "B"]
        assert {s["name"] for s in spans} == {"IRQ0x19", "softirq:NET_RX"}
        # Thread metadata names each CPU.
        names = [r for r in doc["traceEvents"] if r["ph"] == "M"
                 and r["name"] == "thread_name"]
        assert {m["args"]["name"] for m in names} == {"CPU0", "CPU1"}

    def test_chrome_trace_roundtrips_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self.EVENTS, str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_flamegraph_folding(self):
        text = to_flamegraph(sorted(self.EVENTS, key=lambda e: e.ts))
        lines = dict(
            line.rsplit(" ", 1) for line in text.splitlines()
        )
        assert lines["CPU0;hardirq;IRQ0x19"] == "20"
        assert lines["CPU0;softirq;softirq:NET_RX"] == "50"

    def test_flamegraph_drops_unbalanced(self, tmp_path):
        events = [_ev(10, "irq_entry", 0, vector=0x19)]  # never exits
        assert to_flamegraph(events) == ""
        path = tmp_path / "stacks.txt"
        write_flamegraph(events, str(path))
        assert path.read_text() == ""


class TestMachineIntegration:
    def test_zero_overhead_when_detached(self):
        machine = Machine(n_cpus=2, seed=3)
        assert machine.tracer is None  # the guard every emit site uses

    def test_attach_detach(self):
        machine = Machine(n_cpus=2, seed=3)
        tracer = machine.attach_tracer(Tracer(machine.engine))
        assert machine.tracer is tracer
        assert machine.scheduler.tracer is tracer
        machine.detach_tracer()
        assert machine.tracer is None
        assert machine.scheduler.tracer is None


@pytest.fixture(scope="module")
def traced_run():
    """A small no-affinity TX run: produces IRQs, IPIs and migrations.

    The capacity is far above the event volume so nothing is dropped
    and the trace-vs-/proc comparison is exact.
    """
    config = ExperimentConfig(
        direction="tx", message_size=65536, affinity="none",
        warmup_ms=4, measure_ms=6, trace=1 << 20,
    )
    return config, run_experiment(config)


class TestEndToEnd:
    def test_cache_key_unchanged_without_trace(self):
        plain = ExperimentConfig(direction="tx")
        traced = ExperimentConfig(direction="tx", trace=True)
        assert "trace" not in plain.to_dict()
        assert plain.key() != traced.key()

    def test_summary_attached(self, traced_run):
        _, result = traced_run
        trace = result["trace"]
        assert trace["dropped"] == 0
        assert trace["retained"] == trace["emitted"] > 0

    def test_irq_counts_match_procstat(self, traced_run):
        _, result = traced_run
        assert (result["trace"]["irq_entries_per_cpu"]
                == result.device_irqs)

    def test_ipi_counts_match_procstat(self, traced_run):
        _, result = traced_run
        trace = result["trace"]
        assert trace["ipis_per_cpu"] == result.ipis
        assert sum(result.ipis) > 0  # the check must not be vacuous
        assert trace["counts"]["ipi_send"] == sum(result.ipis)

    def test_migrations_match_scheduler(self, traced_run):
        _, result = traced_run
        assert result["trace"]["migrations"] == result["migrations"]

    def test_irq_to_softirq_latency_present(self, traced_run):
        _, result = traced_run
        stats = result["trace"]["irq_to_softirq"]
        assert stats["count"] > 0
        assert 0 < stats["p50"] <= stats["p90"] <= stats["p99"]

    def test_crosscheck_renders_match(self, traced_run):
        config, result = traced_run
        text = render_trace_crosscheck(result, config.label())
        assert "yes" in text
        assert "NO" not in text.replace("NO-", "")
        assert "migrations: trace=%d scheduler=%d (match)" % (
            result["migrations"], result["migrations"]) in text

    def test_exporters_on_real_trace(self, traced_run, tmp_path):
        _, result = traced_run
        events = result.tracer.events()
        doc = write_chrome_trace(events, str(tmp_path / "t.json"))
        assert len(doc["traceEvents"]) > len(events)  # + metadata
        text = to_flamegraph(events)
        assert any(line.startswith("CPU0;hardirq;IRQ0x")
                   for line in text.splitlines())

    def test_summarize_equals_stored(self, traced_run):
        _, result = traced_run
        assert summarize(result.tracer, 2) == result["trace"]

    def test_untraced_result_identical_to_pre_trace(self):
        """Attaching a tracer must not perturb the simulation."""
        base = ExperimentConfig(
            direction="tx", message_size=16384, affinity="full",
            n_connections=4, warmup_ms=4, measure_ms=6,
        )
        traced = ExperimentConfig(
            direction="tx", message_size=16384, affinity="full",
            n_connections=4, warmup_ms=4, measure_ms=6, trace=True,
        )
        a = run_experiment(base)
        b = run_experiment(traced)
        assert a.throughput_gbps == b.throughput_gbps
        assert a.bin_vector("engine") == b.bin_vector("engine")
        assert a.ipis == b.ipis
