"""Tests for workload selection in the experiment runner."""

import pytest

from repro.core.experiment import ExperimentConfig, run_experiment

SMALL = dict(n_connections=4, warmup_ms=6, measure_ms=8, seed=5)


class TestConfigPlumbing:
    def test_default_workload_is_ttcp(self):
        cfg = ExperimentConfig()
        assert cfg.workload == "ttcp"
        assert "ttcp" not in cfg.label()

    def test_workload_in_label_and_key(self):
        base = ExperimentConfig(message_size=8192, **SMALL)
        iscsi = ExperimentConfig(message_size=8192, workload="iscsi",
                                 **SMALL)
        assert iscsi.label().startswith("iscsi-")
        assert base.key() != iscsi.key()

    def test_roundtrip(self):
        cfg = ExperimentConfig(workload="web", **SMALL)
        clone = ExperimentConfig(**cfg.to_dict())
        assert clone.key() == cfg.key()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(workload="seti-at-home")


class TestWorkloadRuns:
    @pytest.mark.parametrize("workload,size", [
        ("iscsi", 8192),
        ("web", 16384),
    ])
    def test_runs_and_measures(self, workload, size):
        result = run_experiment(ExperimentConfig(
            workload=workload, message_size=size, affinity="full", **SMALL
        ))
        assert result.total_bytes > 0
        assert result.throughput_gbps > 0.1
        assert result["rx_drops"] == 0

    def test_affinity_helps_other_workloads_too(self):
        gains = {}
        for workload in ("iscsi",):
            results = {}
            for mode in ("none", "full"):
                results[mode] = run_experiment(ExperimentConfig(
                    workload=workload, message_size=8192, affinity=mode,
                    n_connections=8, warmup_ms=8, measure_ms=10, seed=5,
                ))
            gains[workload] = (
                results["full"].throughput_gbps
                / results["none"].throughput_gbps - 1.0
            )
        assert gains["iscsi"] > 0.08


class TestCostOverrides:
    def test_override_changes_key_and_behaviour(self):
        plain = ExperimentConfig(message_size=8192, **SMALL)
        tweaked = ExperimentConfig(message_size=8192,
                                   cost_overrides={"c2c_transfer": 900},
                                   **SMALL)
        assert plain.key() != tweaked.key()
        a = run_experiment(plain)
        b = run_experiment(tweaked)
        # With 4 connections under no affinity, some cross-CPU traffic
        # exists; raising its price cannot *increase* throughput.
        assert b.throughput_gbps <= a.throughput_gbps * 1.02

    def test_invalid_override_rejected(self):
        with pytest.raises(TypeError):
            run_experiment(ExperimentConfig(
                cost_overrides={"warp_factor": 9}, **SMALL
            ))
