"""Wall-clock benchmark harness for the simulator's hot path.

    PYTHONPATH=src python tools/bench.py [--quick] [--repeats N]
    PYTHONPATH=src python tools/bench.py --check [--threshold 0.15]
    PYTHONPATH=src python tools/bench.py --update-baseline
    PYTHONPATH=src python tools/bench.py --compare-engines [--min-speedup X]

Runs a matrix of ttcp cells (affinity mode x message size), timing
each one end to end with ``time.process_time`` (CPU time: immune to
scheduler preemption, the dominant noise source on shared runners).
Each cell is repeated and summarized as median and p90 seconds plus
simulated events per wall-second, then written to
``benchmarks/perf/BENCH_<date>T<time>.json``.

Regression gating
-----------------
Absolute wall-clock is machine-specific, so the committed baseline
(``benchmarks/perf/baseline.json``) cannot be compared across hosts
directly.  Every bench run therefore also times a fixed pure-Python
*calibration kernel* whose instruction mix (dict churn, short-list
scans, integer arithmetic) mirrors the simulator's, and records each
cell as a dimensionless **score** = cell seconds / calibration
seconds.  ``--check`` compares scores: a cell whose score exceeds the
baseline's by more than ``--threshold`` (default 15%) fails the run.
Scores still drift a few percent between CPU generations -- the gate
catches real regressions (tens of percent), not micro-noise.

The experiment result cache is always bypassed; a cache hit would
time a file read.

Engines
-------
``--engine pure|compiled|auto`` selects the charging engine for the
matrix (default: whatever ``$REPRO_ENGINE`` says, i.e. pure).  Reports
record which engine actually ran, and ``--check`` refuses to compare
scores across engines -- a compiled-engine run against a pure baseline
would "pass" any regression.

``--compare-engines`` times the pure and compiled engines against each
other on the 64KB RX cell, interleaved ABBA (pure, compiled, compiled,
pure per round) so drift in machine load hits both variants equally.
``--min-speedup`` (default 0: report only) turns it into a gate.
"""

import argparse
import datetime
import gc
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.experiment import ExperimentConfig, run_experiment  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
PERF_DIR = os.path.join(HERE, "..", "benchmarks", "perf")
BASELINE = os.path.join(PERF_DIR, "baseline.json")


def default_out_path(timestamp, perf_dir=None):
    """Default report path for a run stamped ``timestamp``.

    The filename carries date *and* time (colons stripped -- they are
    path separators on some filesystems): a day-only key meant a second
    run the same day silently clobbered the first report.
    """
    return os.path.join(
        perf_dir or PERF_DIR,
        "BENCH_%s.json" % timestamp.replace(":", ""),
    )

#: The full matrix: the paper's four placement policies crossed with
#: small / medium / large transactions (1KB stresses per-charge
#: overhead, 64KB stresses the batched copy walks).
MODES = ("none", "proc", "irq", "full")
SIZES = (1024, 16384, 65536)

#: The multi-queue steering modes ride along at one representative
#: size: their hot path (Toeplitz lookups, per-queue rings, FD
#: sampling) is distinct from the single-NIC matrix, so a regression
#: there would otherwise be invisible to the gate.
MQ_MODES = ("rss", "flow-director")
MQ_SIZES = (16384,)

#: The flow-class aggregation hot path rides along at one cell: a
#: 1000-flow RSS population collapsed to 4 class representatives.
#: Its cost profile (flow partitioning, class-indexed columns,
#: weight-scaled buffers) is distinct from both matrices above, so a
#: regression there would otherwise be invisible to the gate.
SCALE_CELLS = (("rss-1k", 16384),)

#: The NIC-offload hot paths ride along at the large size: the TOE
#: cell times the engine-side datapath (completion processing, NIC
#: ACK generation, posted-buffer moderation), the GRO cell the
#: in-ring merge loop.  Both are new code the classic matrix never
#: enters.
OFFLOAD_CELLS = (("toe", 65536), ("gro-rx", 65536))

#: ``--quick`` corners: the cheapest and the most expensive cell of
#: the single-NIC matrix plus both steering modes, the aggregated
#: 1K-flow cell and the offload cells -- enough to catch a hot-path
#: regression in CI without paying for the full matrix.
QUICK_CELLS = (("none", 1024), ("full", 65536),
               ("rss", 16384), ("flow-director", 16384),
               ("rss-1k", 16384)) + OFFLOAD_CELLS


def _cell_config(mode, size, direction, measure_ms):
    if mode == "toe":
        # Full transport offload: affinity-independent, single NIC.
        return ExperimentConfig(
            direction=direction,
            message_size=size,
            affinity="toe",
            n_connections=4,
            warmup_ms=2,
            measure_ms=measure_ms,
            seed=7,
        )
    if mode == "gro-rx":
        # In-ring receive aggregation under full affinity.  Always an
        # RX cell (the knob only has an RX datapath), whatever
        # --direction the rest of the matrix runs.
        return ExperimentConfig(
            direction="rx",
            message_size=size,
            affinity="full",
            n_connections=4,
            net_overrides={"gro": True},
            warmup_ms=2,
            measure_ms=measure_ms,
            seed=7,
        )
    if mode == "rss-1k":
        # 1000 flows, class-aggregated: the scale-study hot path.
        return ExperimentConfig(
            direction=direction,
            message_size=size,
            affinity="rss",
            n_connections=1000,
            n_cpus=4,
            n_queues=4,
            aggregation="class",
            warmup_ms=2,
            measure_ms=measure_ms,
            seed=7,
        )
    if mode in MQ_MODES:
        # Steering cells run the shared 4-queue NIC with more flows
        # than queues (the contended regime the subsystem models).
        return ExperimentConfig(
            direction=direction,
            message_size=size,
            affinity=mode,
            n_connections=8,
            n_cpus=4,
            n_queues=4,
            warmup_ms=2,
            measure_ms=measure_ms,
            seed=7,
        )
    return ExperimentConfig(
        direction=direction,
        message_size=size,
        affinity=mode,
        n_connections=4,
        warmup_ms=2,
        measure_ms=measure_ms,
        seed=7,
    )


def calibrate(repeats=5):
    """Time the fixed calibration kernel; returns median seconds.

    Pure-Python dict/list/integer churn sized to ~100ms on 2020s
    hardware.  Deterministic: no allocation-order or hash-seed
    dependence that would move the timing between runs.
    """
    def kernel():
        buckets = [{} for _ in range(64)]
        lists = [[] for _ in range(64)]
        acc = 0
        for i in range(120_000):
            line = (i * 2654435761) >> 8
            b = buckets[line & 63]
            if line in b:
                del b[line]
                b[line] = True
            else:
                b[line] = True
                if len(b) > 8:
                    del b[next(iter(b))]
            lst = lists[line & 63]
            if lst and lst[0] == line:
                acc += 1
            else:
                lst.insert(0, line)
                if len(lst) > 8:
                    lst.pop()
            acc += line & 7
        return acc

    times = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.process_time()
            kernel()
            times.append(time.process_time() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return statistics.median(times)


def bench_cell(mode, size, direction, measure_ms, repeats):
    """Time one cell ``repeats`` times; returns the summary dict."""
    cfg = _cell_config(mode, size, direction, measure_ms)
    # One untimed run warms import caches, code objects and the
    # function-spec memos that persist across Machine instances.
    result = run_experiment(cfg, cache=None)
    engine = result.charge_engine
    times = []
    events = 0
    for _ in range(repeats):
        t0 = time.process_time()
        result = run_experiment(cfg, cache=None)
        times.append(time.process_time() - t0)
        events = result.events_fired
    times.sort()
    median = statistics.median(times)
    p90 = times[min(len(times) - 1, int(round(0.9 * (len(times) - 1))))]
    return {
        "mode": mode,
        "size": size,
        "direction": direction,
        "repeats": repeats,
        "measure_ms": measure_ms,
        "engine": engine,
        "median_s": round(median, 4),
        "p90_s": round(p90, 4),
        "min_s": round(times[0], 4),
        "events_fired": events,
        "events_per_s": round(events / median) if median else 0,
        # Process peak RSS after the cell (KB; monotone across cells --
        # a memory regression shows up as a jump at the cell that
        # caused it).
        "peak_rss_kb": getattr(result, "peak_rss_kb", None),
    }


def run_matrix(args):
    cells = QUICK_CELLS if args.quick else (
        [(m, s) for m in MODES for s in SIZES]
        + [(m, s) for m in MQ_MODES for s in MQ_SIZES]
        + list(SCALE_CELLS)
        + list(OFFLOAD_CELLS)
    )
    calib = calibrate()
    print("calibration kernel: %.4fs" % calib, file=sys.stderr)
    rows = []
    for mode, size in cells:
        row = bench_cell(mode, size, args.direction, args.measure_ms,
                         args.repeats)
        row["score"] = round(row["median_s"] / calib, 3)
        rows.append(row)
        print("%-5s %6dB  median %.3fs  p90 %.3fs  %9d ev/s  score %.2f"
              % (row["mode"], row["size"], row["median_s"], row["p90_s"],
                 row["events_per_s"], row["score"]),
              file=sys.stderr)
    now = datetime.datetime.now()
    return {
        "schema": 1,
        "date": now.date().isoformat(),
        # Second-resolution stamp so same-day reports get distinct
        # default filenames (see default_out_path).
        "timestamp": now.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "direction": args.direction,
        # Which charging engine actually ran (the request may have
        # fallen back to pure if no toolchain was available).
        "engine": rows[0]["engine"] if rows else "pure",
        "calibration_s": round(calib, 4),
        "quick": bool(args.quick),
        "cells": rows,
    }


def check_against_baseline(report, threshold):
    """Compare a fresh report's scores to the committed baseline.

    Returns the number of regressed cells (0 = pass).  Cells missing
    from the baseline are reported but never fail the check, so the
    matrix can grow without a lockstep baseline update.
    """
    if not os.path.exists(BASELINE):
        print("no baseline at %s; run --update-baseline first" % BASELINE,
              file=sys.stderr)
        return 1
    with open(BASELINE) as fh:
        base = json.load(fh)
    base_engine = base.get("engine", "pure")
    run_engine = report.get("engine", "pure")
    if base_engine != run_engine:
        # Cross-engine score ratios are meaningless (the compiled
        # engine is 2-3x faster by design): skip the gate rather than
        # pass-or-fail on noise.
        print("baseline engine %r != run engine %r; skipping score gate "
              "(re-run with --engine %s or refresh the baseline)"
              % (base_engine, run_engine, base_engine), file=sys.stderr)
        return 0
    base_cells = {
        (c["mode"], c["size"], c["direction"]): c for c in base["cells"]
    }
    regressed = 0
    for cell in report["cells"]:
        key = (cell["mode"], cell["size"], cell["direction"])
        ref = base_cells.get(key)
        if ref is None:
            print("  %-5s %6dB: no baseline entry (skipped)"
                  % (cell["mode"], cell["size"]))
            continue
        ratio = cell["score"] / ref["score"] if ref["score"] else 0.0
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSED"
            regressed += 1
        print("  %-5s %6dB: score %.2f vs baseline %.2f (%+.1f%%) %s"
              % (cell["mode"], cell["size"], cell["score"], ref["score"],
                 (ratio - 1.0) * 100, verdict))
    return regressed


#: The engine-comparison cell: 64KB RX, full affinity -- the batched
#: copy walks dominate, which is exactly the path the compiled engine
#: exists to accelerate.
COMPARE_CELL = ("full", 65536)


def _timed_cell_run(cfg, engine):
    """One timed run of ``cfg`` under ``engine``; returns (secs, engine)."""
    os.environ["REPRO_ENGINE"] = engine
    t0 = time.process_time()
    result = run_experiment(cfg, cache=None)
    return time.process_time() - t0, result.charge_engine


def compare_engines(args):
    """Interleaved ABBA timing of pure vs compiled on the 64KB RX cell.

    Returns 0 on success (speedup printed and, if ``--min-speedup`` is
    set, at or above it), 1 otherwise.  Single-round medians lie on
    shared runners; each round contributes one pure and one compiled
    sample from both orders (P C / C P), so slow drift cancels.
    """
    mode, size = COMPARE_CELL
    cfg = _cell_config(mode, size, args.direction, args.measure_ms)
    saved = os.environ.get("REPRO_ENGINE")
    try:
        # Warm both engines untimed (first compiled run may pay a
        # one-time cc invocation; first pure run warms spec memos).
        _, pure_name = _timed_cell_run(cfg, "pure")
        _, compiled_name = _timed_cell_run(cfg, "compiled")
        if compiled_name != "compiled":
            print("compiled engine unavailable (fell back to %r); "
                  "cannot compare" % compiled_name, file=sys.stderr)
            return 1
        pure_times, compiled_times = [], []
        for _ in range(args.repeats):
            a, _ = _timed_cell_run(cfg, "pure")
            b, _ = _timed_cell_run(cfg, "compiled")
            c, _ = _timed_cell_run(cfg, "compiled")
            d, _ = _timed_cell_run(cfg, "pure")
            pure_times += [a, d]
            compiled_times += [b, c]
    finally:
        if saved is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = saved
    pure_med = statistics.median(pure_times)
    compiled_med = statistics.median(compiled_times)
    speedup = pure_med / compiled_med if compiled_med else 0.0
    print("%-5s %6dB  pure median %.3fs  compiled median %.3fs  "
          "speedup %.2fx" % (mode, size, pure_med, compiled_med, speedup),
          file=sys.stderr)
    if args.min_speedup and speedup < args.min_speedup:
        print("speedup %.2fx below required %.2fx"
              % (speedup, args.min_speedup), file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--direction", choices=("tx", "rx"), default="rx")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed runs per cell (default 5)")
    parser.add_argument("--measure-ms", type=int, default=6,
                        help="simulated measurement window per run")
    parser.add_argument("--quick", action="store_true",
                        help="two-cell smoke matrix (for CI)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline; "
                             "exit non-zero on regression")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative score growth (default 0.15)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write this run's report as the new baseline")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default "
                             "benchmarks/perf/BENCH_<date>T<time>.json)")
    parser.add_argument("--runstore", action="store_true",
                        help="also record this bench as a run under "
                             "results/runs/ ($REPRO_RUNS_DIR) so "
                             "nightlies land in the cross-run index")
    parser.add_argument("--engine", choices=("pure", "compiled", "auto"),
                        default=None,
                        help="charging engine for the matrix (default: "
                             "$REPRO_ENGINE, i.e. pure)")
    parser.add_argument("--compare-engines", action="store_true",
                        help="time pure vs compiled (interleaved ABBA) on "
                             "the 64KB RX cell and report the speedup")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="with --compare-engines: fail below this "
                             "speedup (default 0: report only)")
    args = parser.parse_args(argv)

    if args.compare_engines:
        return compare_engines(args)
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine

    store = None
    if args.runstore:
        from repro.runstore import RunStore

        store = RunStore.create(
            "bench",
            args={k: v for k, v in vars(args).items() if k != "func"},
        )
        print("run %s -> %s" % (store.run_id, store.directory),
              file=sys.stderr)

    report = run_matrix(args)

    out = args.out or default_out_path(report["timestamp"])
    try:
        os.makedirs(PERF_DIR, exist_ok=True)
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % out, file=sys.stderr)
    except OSError as exc:
        # A full or read-only disk loses the report file, not the
        # bench: scores were already printed and --check still runs.
        print("could not write %s (%s); continuing" % (out, exc),
              file=sys.stderr)

    if store is not None:
        store.write_artifact("report.json", report)
        store.finalize("completed")

    if args.update_baseline:
        with open(BASELINE, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("updated %s" % BASELINE, file=sys.stderr)

    if args.check:
        regressed = check_against_baseline(report, args.threshold)
        if regressed:
            print("%d cell(s) regressed beyond %.0f%%"
                  % (regressed, args.threshold * 100), file=sys.stderr)
            return 1
        print("all cells within %.0f%% of baseline"
              % (args.threshold * 100), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
