"""Calibration harness: compare simulated Table-1 metrics to the paper.

Run after any change to the work budgets in repro.net.params:

    python tools/calibrate.py [--quick]

Prints per-bin %cycles / CPI / MPI for the four corners the paper
characterizes (TX/RX x 128B/64KB, no vs full affinity), plus the
headline cost/throughput numbers, next to the paper's values.
"""

import sys

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.cpu.events import (
    BRANCHES,
    BR_MISPREDICTS,
    CYCLES,
    INSTRUCTIONS,
    LLC_MISSES,
    MACHINE_CLEARS,
)
from repro.cpu.function import BINS

# Paper Table 1: {(dir, size, aff): {bin: (%cycles, CPI, MPI)}}
PAPER = {
    ("tx", 65536, "none"): dict(
        interface=(6.0, 17.62, 0.0212), engine=(25.5, 5.01, 0.0070),
        buf_mgmt=(28.0, 5.93, 0.0065), copies=(27.1, 3.93, 0.0106),
        driver=(10.4, 6.06, 0.0049), locks=(0.6, 14.65, 0.0025),
        timers=(2.0, 4.07, 0.0029), overall=(100.0, 5.04, 0.0078)),
    ("tx", 65536, "full"): dict(
        interface=(5.0, 11.27, 0.0063), engine=(21.8, 3.41, 0.0016),
        buf_mgmt=(20.3, 4.06, 0.0007), copies=(37.1, 4.12, 0.0095),
        driver=(12.2, 5.35, 0.0030), locks=(0.0, 16.49, 0.0040),
        timers=(3.0, 7.10, 0.0116), overall=(100.0, 4.14, 0.0047)),
    ("tx", 128, "none"): dict(
        interface=(42.4, 8.68, 0.0034), engine=(29.0, 3.38, 0.0020),
        buf_mgmt=(11.6, 4.44, 0.0046), copies=(5.9, 1.62, 0.0082),
        driver=(4.4, 5.73, 0.0065), locks=(3.8, 14.96, 0.0030),
        timers=(1.5, 2.58, 0.0016), overall=(100.0, 4.56, 0.0038)),
    ("tx", 128, "full"): dict(
        interface=(46.0, 8.73, 0.0037), engine=(28.8, 3.05, 0.0009),
        buf_mgmt=(8.2, 2.99, 0.0001), copies=(6.9, 1.60, 0.0079),
        driver=(6.0, 4.38, 0.0025), locks=(1.0, 20.06, 0.0099),
        timers=(2.2, 3.15, 0.0042), overall=(100.0, 4.11, 0.0028)),
    ("rx", 65536, "none"): dict(
        interface=(3.0, 15.44, 0.0195), engine=(22.8, 4.70, 0.0046),
        buf_mgmt=(11.2, 6.57, 0.0106), copies=(40.3, 66.34, 0.1329),
        driver=(11.0, 6.89, 0.0108), locks=(0.3, 15.16, 0.0054),
        timers=(11.3, 5.85, 0.0097), overall=(100.0, 8.49, 0.0133)),
    ("rx", 65536, "full"): dict(
        interface=(7.5, 8.90, 0.0023), engine=(22.7, 3.72, 0.0016),
        buf_mgmt=(20.4, 4.04, 0.0039), copies=(32.1, 58.03, 0.1100),
        driver=(7.2, 5.69, 0.0051), locks=(1.3, 22.78, 0.0222),
        timers=(8.2, 7.35, 0.0146), overall=(100.0, 7.53, 0.0101)),
    ("rx", 128, "none"): dict(
        interface=(41.5, 8.49, 0.0032), engine=(23.7, 3.38, 0.0021),
        buf_mgmt=(10.0, 2.31, 0.0023), copies=(13.8, 4.99, 0.0074),
        driver=(5.0, 5.64, 0.0063), locks=(2.7, 17.95, 0.0080),
        timers=(2.2, 3.04, 0.0018), overall=(100.0, 4.66, 0.0032)),
    ("rx", 128, "full"): dict(
        interface=(46.0, 8.66, 0.0036), engine=(21.0, 2.72, 0.0005),
        buf_mgmt=(7.0, 1.55, 0.0002), copies=(15.0, 5.14, 0.0077),
        driver=(5.0, 4.44, 0.0024), locks=(1.0, 23.22, 0.0103),
        timers=(3.0, 3.17, 0.0042), overall=(100.0, 4.23, 0.0023)),
}

#: Paper Figure 4 cost corners (GHz/Gbps).
PAPER_COST = {
    ("tx", 65536, "none"): 1.9, ("tx", 65536, "full"): 1.4,
    ("tx", 128, "none"): 4.6, ("tx", 128, "full"): 4.1,
    ("rx", 65536, "none"): 2.3, ("rx", 65536, "full"): 1.8,
    ("rx", 128, "none"): 4.7, ("rx", 128, "full"): 4.3,
}


def report(config, result):
    key = (config.direction, config.message_size, config.affinity)
    paper = PAPER.get(key, {})
    print("=" * 78)
    print("%s   cost=%.2f (paper ~%.1f)  tput=%.0f Mb/s  util=%s  ipis=%s"
          % (config.label(), result.cost_ghz_per_gbps,
             PAPER_COST.get(key, float("nan")), result.throughput_mbps,
             "/".join("%.0f%%" % (u * 100) for u in result.per_cpu_utilization),
             result.ipis))
    total_cycles = result.stack_total(CYCLES)
    print("%-10s %16s %14s %18s" % ("bin", "%cycles(sim/pap)",
                                    "CPI(sim/pap)", "MPIx1000(sim/pap)"))
    rows = [b for b in BINS if b != "other"] + ["overall"]
    for b in rows:
        if b == "overall":
            vec = [result.stack_total(i) for i in range(11)]
        else:
            vec = result.bin_vector(b)
        cyc, instr, llc = vec[CYCLES], vec[INSTRUCTIONS], vec[LLC_MISSES]
        pct = 100.0 * cyc / total_cycles if total_cycles else 0.0
        cpi = cyc / instr if instr else 0.0
        mpi = 1000.0 * llc / instr if instr else 0.0
        p = paper.get(b, (float("nan"),) * 3)
        print("%-10s %7.1f /%6.1f %7.2f /%5.1f %9.2f /%8.1f"
              % (b, pct, p[0], cpi, p[1], mpi, p[2] * 1000))
    clears = result.stack_total(MACHINE_CLEARS)
    br = result.stack_total(BRANCHES)
    mis = result.stack_total(BR_MISPREDICTS)
    print("clears/bit=%.4f  %%br=%.1f  %%misp=%.2f  migr=%d  c2c=%d"
          % (clears / float(result.work_bits or 1),
             100.0 * br / (result.stack_total(INSTRUCTIONS) or 1),
             100.0 * mis / (br or 1), result["migrations"],
             result["c2c_transfers"]))


def main():
    quick = "--quick" in sys.argv
    corners = [("tx", 65536), ("tx", 128), ("rx", 65536), ("rx", 128)]
    if quick:
        corners = corners[:2]
    for direction, size in corners:
        for affinity in ("none", "full"):
            config = ExperimentConfig(
                direction=direction, message_size=size, affinity=affinity
            )
            result = run_experiment(config)
            report(config, result)


if __name__ == "__main__":
    main()
