"""Generate EXPERIMENTS.md: paper-vs-measured for every artefact.

Reads the cached experiment results (running anything missing) and
writes a Markdown report comparing the paper's numbers with this
reproduction's, artefact by artefact.

    python tools/make_experiments_report.py [output-path]
"""

import sys

from repro.core.characterization import characterize
from repro.core.correlation import correlate
from repro.core.experiment import (
    DEFAULT_CACHE,
    PAPER_SIZES,
    ExperimentConfig,
    run_experiment,
)
from repro.core.indicators import impact_indicators
from repro.core.lockstudy import LockComparison
from repro.core.metrics import (
    best_gain,
    cost_reduction,
    run_size_sweep,
    throughput_gain,
)
from repro.core.modes import AFFINITY_MODES
from repro.core.speedup import improvement_table
from repro.cpu.params import CostModel

SWEEP_KW = dict(warmup_ms=14, measure_ms=18)


def corner(direction, size, affinity):
    return run_experiment(
        ExperimentConfig(direction=direction, message_size=size,
                         affinity=affinity),
        cache=DEFAULT_CACHE,
        progress=lambda m: print("  " + m, file=sys.stderr),
    )


def fmt_pct(x):
    # Gain/reduction helpers return None when a sweep cell failed;
    # render the hole the way the figure renderers do.
    if x is None:
        return "--"
    return "%.1f%%" % (x * 100)


def main(out_path="EXPERIMENTS.md"):
    lines = []
    w = lines.append

    w("# EXPERIMENTS — paper vs. measured")
    w("")
    w("Every table and figure of Foong et al. (ISPASS 2005), regenerated")
    w("on the simulator.  *Measured* numbers come from the cached runs in")
    w("`.repro-results/`; regenerate everything with")
    w("`pytest benchmarks/ --benchmark-only` or this script.")
    w("")
    w("Absolute magnitudes are not the target (the substrate is a")
    w("simulator, not the authors' 2005 testbed); the comparison is of")
    w("*shape*: orderings, approximate factors, which bins move.")
    w("")

    # ------------------------------------------------------- Figures 3/4
    print("sweeps...", file=sys.stderr)
    tx_sweep = run_size_sweep("tx", cache=DEFAULT_CACHE, **SWEEP_KW)
    rx_sweep = run_size_sweep("rx", cache=DEFAULT_CACHE, **SWEEP_KW)

    w("## Figure 3 — throughput & utilization vs transaction size")
    w("")
    w("| claim | paper | measured |")
    w("|---|---|---|")
    w("| IRQ-affinity best throughput gain (TX) | up to ~25%% | %s |"
      % fmt_pct(best_gain(tx_sweep, PAPER_SIZES, "irq")))
    w("| full-affinity best throughput gain (TX) | up to ~29-30%% | %s |"
      % fmt_pct(best_gain(tx_sweep, PAPER_SIZES, "full")))
    w("| process-affinity-only gain (TX, 64KB) | ~0%% | %s |"
      % fmt_pct(throughput_gain(tx_sweep, 65536, "proc")))
    w("| full-affinity best gain (RX) | similar to TX | %s |"
      % fmt_pct(best_gain(rx_sweep, PAPER_SIZES, "full")))
    w("| CPU utilization | ~100%% at all sizes | %s |"
      % fmt_pct(min(tx_sweep[(s, m)].utilization
                    for s in PAPER_SIZES for m in AFFINITY_MODES)))
    w("| bandwidth grows with size | yes | yes (%d -> %d Mb/s, TX none) |"
      % (tx_sweep[(128, "none")].throughput_mbps,
         tx_sweep[(65536, "none")].throughput_mbps))
    w("")
    w("Artefacts: `results/figure3_tx.txt`, `results/figure3_rx.txt`.")
    w("")

    w("## Figure 4 — processing cost (GHz/Gbps)")
    w("")
    w("| point | paper | measured |")
    w("|---|---|---|")
    for direction, sweep in (("tx", tx_sweep), ("rx", rx_sweep)):
        for mode in ("none", "full"):
            paper = {
                ("tx", "none"): "~1.9", ("tx", "full"): "~1.4",
                ("rx", "none"): "~2.0-2.4", ("rx", "full"): "~1.6-1.9",
            }[(direction, mode)]
            w("| %s 64KB, %s affinity | %s | %.2f |"
              % (direction.upper(), mode, paper,
                 sweep[(65536, mode)].cost_ghz_per_gbps))
    w("| 64KB TX cost reduction | ~25%% | %s |"
      % fmt_pct(cost_reduction(tx_sweep, 65536, "full")))
    w("| cost falls with size | yes | yes (TX none: %.2f -> %.2f) |"
      % (tx_sweep[(128, "none")].cost_ghz_per_gbps,
         tx_sweep[(65536, "none")].cost_ghz_per_gbps))
    w("")

    # --------------------------------------------------------- Table 1
    print("corners...", file=sys.stderr)
    corners = {}
    for direction in ("tx", "rx"):
        for size in (65536, 128):
            for affinity in ("none", "full"):
                corners[(direction, size, affinity)] = corner(
                    direction, size, affinity)

    w("## Table 1 — baseline characterization")
    w("")
    w("Selected cells (full tables in `results/table1_*.txt`):")
    w("")
    w("| metric | paper | measured |")
    w("|---|---|---|")
    t64n = characterize(corners[("tx", 65536, "none")])
    t64f = characterize(corners[("tx", 65536, "full")])
    r64n = characterize(corners[("rx", 65536, "none")])
    t128n = characterize(corners[("tx", 128, "none")])
    w("| TX 64KB overall CPI (none -> full) | 5.04 -> 4.14 | %.2f -> %.2f |"
      % (t64n["overall"].cpi, t64f["overall"].cpi))
    w("| TX 64KB overall MPI (none -> full) | .0078 -> .0047 | %.4f -> %.4f |"
      % (t64n["overall"].mpi, t64f["overall"].mpi))
    w("| TX 64KB engine share | 25.5%% | %s |"
      % fmt_pct(t64n["engine"].pct_cycles))
    w("| TX 64KB buf-mgmt share | 28.0%% | %s |"
      % fmt_pct(t64n["buf_mgmt"].pct_cycles))
    w("| TX 128B interface share | 42.4%% | %s |"
      % fmt_pct(t128n["interface"].pct_cycles))
    w("| RX 64KB copies share | 40.3%% | %s |"
      % fmt_pct(r64n["copies"].pct_cycles))
    w("| RX 64KB copies CPI (rep movl) | 66.3 | %.1f |"
      % r64n["copies"].cpi)
    w("| RX 64KB copies MPI | 0.133 | %.3f |" % r64n["copies"].mpi)
    w("| RX more memory-bound than TX | CPI 8.5 vs 5.0 | CPI %.1f vs %.1f |"
      % (r64n["overall"].cpi, t64n["overall"].cpi))
    w("| branches of instructions | 10-16%% | %s |"
      % fmt_pct(t64n["overall"].pct_branches))
    w("| branch mispredict ratio | <2%% | %s |"
      % fmt_pct(t64n["overall"].pct_mispredicted))
    w("")

    # --------------------------------------------------------- Table 2
    w("## Table 2 — spinlock behaviour")
    w("")
    cmp64 = LockComparison(corners[("tx", 65536, "none")],
                           corners[("tx", 65536, "full")])
    w("| metric | paper | measured |")
    w("|---|---|---|")
    w("| full-aff lock branches vs no-aff | 5-10%% | %s |"
      % fmt_pct(cmp64.branch_collapse_ratio()))
    w("| mispredict ratio rises with affinity | yes | %s (%s -> %s) |"
      % ("yes" if cmp64.mispredict_ratio("full")
         >= cmp64.mispredict_ratio("none") else "no",
         fmt_pct(cmp64.mispredict_ratio("none")),
         fmt_pct(cmp64.mispredict_ratio("full"))))
    w("| contention (none -> full) | high -> ~none | %s -> %s |"
      % (fmt_pct(cmp64.contention("none")),
         fmt_pct(cmp64.contention("full"))))
    w("")

    # --------------------------------------------------------- Figure 5
    w("## Figure 5 — performance impact indicators")
    w("")
    costs = CostModel()
    w("| corner | paper clears/LLC (% of time) | measured clears/LLC |")
    w("|---|---|---|")
    paper_f5 = {
        ("tx", 65536, "none"): (59.3, 39.8),
        ("tx", 65536, "full"): (54.8, 33.6),
        ("tx", 128, "none"): (39.8, 24.2),
        ("tx", 128, "full"): (22.4, 19.8),
        ("rx", 65536, "none"): (71.2, 45.5),
        ("rx", 65536, "full"): (60.1, 39.0),
        ("rx", 128, "none"): (66.8, 20.6),
        ("rx", 128, "full"): (21.3, 15.7),
    }
    for key, (p_clears, p_llc) in paper_f5.items():
        rows = {r[0]: r[2] for r in impact_indicators(corners[key], costs)}
        w("| %s %s %s | %.0f / %.0f | %.0f / %.0f |"
          % (key[0].upper(), key[1], key[2], p_clears, p_llc,
             rows["Machine clear"] * 100, rows["LLC miss"] * 100))
    w("")
    w("Machine clears and LLC misses rank first and second in every")
    w("measured corner, the paper's core Figure 5 finding.  The")
    w("no-vs-full contrast at RX 128B is weaker than the paper's (see")
    w("deviations below).")
    w("")

    # --------------------------------------------------------- Table 3
    w("## Table 3 — per-bin improvements (no -> full affinity)")
    w("")
    w("| corner | paper overall cycles / LLC | measured cycles / LLC |")
    w("|---|---|---|")
    paper_t3 = {
        ("tx", 65536): (22.1, 43.0),
        ("tx", 128): (9.3, 29.3),
        ("rx", 65536): (21.0, 35.0),
        ("rx", 128): (9.2, 28.6),
    }
    for (direction, size), (p_cyc, p_llc) in paper_t3.items():
        rows = improvement_table(
            corners[(direction, size, "none")],
            corners[(direction, size, "full")],
        )
        w("| %s %s | %.0f%% / %.0f%% | %s / %s |"
          % (direction.upper(), size, p_cyc, p_llc,
             fmt_pct(rows["overall"].cycles), fmt_pct(rows["overall"].llc)))
    rows64 = improvement_table(corners[("tx", 65536, "none")],
                               corners[("tx", 65536, "full")])
    w("")
    w("Engine + buffer management carry %s of the TX 64KB improvement"
      % fmt_pct((rows64["engine"].cycles + rows64["buf_mgmt"].cycles)
                / rows64["overall"].cycles))
    w("(paper: ~88%%); copies contribute %s (paper: ~1%%)."
      % fmt_pct(rows64["copies"].cycles / rows64["overall"].cycles))
    w("")

    # --------------------------------------------------------- Table 4
    w("## Table 4 — per-CPU machine-clear hotspots")
    w("")
    w("Qualitative checks (see `results/table4_*.txt` for the tables):")
    w("")
    from repro.core.clears import clears_assertions

    checks = clears_assertions(corners[("tx", 65536, "none")],
                               corners[("tx", 65536, "full")])
    for claim, ok in checks.items():
        w("* %s — **%s**" % (claim, "holds" if ok else "DOES NOT HOLD"))
    w("")

    # ------------------------------------------- Table 4 trace cross-check
    print("trace cross-check...", file=sys.stderr)
    w("### Trace-based cross-check")
    w("")
    w("A traced no-affinity TX run (`repro-affinity trace`) replays the")
    w("Table 4 attribution from tracepoints instead of aggregates: the")
    w("per-CPU `irq_entry`/`ipi_recv`/`sched_migrate` counts must equal")
    w("the `/proc/interrupts` ledger and scheduler totals *exactly*.")
    w("")
    w("| check | expectation | measured |")
    w("|---|---|---|")
    traced = run_experiment(ExperimentConfig(
        direction="tx", message_size=65536, affinity="none",
        warmup_ms=4, measure_ms=6, trace=1 << 20,
    ))
    trace = traced["trace"]
    w("| device IRQs per CPU, trace vs /proc | equal | %s vs %s (%s) |"
      % (trace["irq_entries_per_cpu"], traced.device_irqs,
         "equal" if trace["irq_entries_per_cpu"] == traced.device_irqs
         else "MISMATCH"))
    w("| resched IPIs per CPU, trace vs /proc | equal | %s vs %s (%s) |"
      % (trace["ipis_per_cpu"], traced.ipis,
         "equal" if trace["ipis_per_cpu"] == traced.ipis
         else "MISMATCH"))
    w("| migrations, trace vs scheduler | equal | %d vs %d (%s) |"
      % (trace["migrations"], traced["migrations"],
         "equal" if trace["migrations"] == traced["migrations"]
         else "MISMATCH"))
    w("| IPIs land off CPU0 (no affinity) | yes | %s |"
      % ("yes" if sum(traced.ipis[1:]) > 0 else "no"))
    w("| ring overruns | 0 | %d of %d |"
      % (trace["dropped"], trace["emitted"]))
    w("")
    w("The IPIs (and the machine clears each induces) are received by")
    w("the woken CPUs, not the interrupt CPU — the paper's Table 4")
    w("attribution — and under full affinity they disappear entirely")
    w("(`tests/test_trace.py`).  IRQ→NET_RX softirq latency p50/p99:")
    w("%.1f/%.1f µs." % (trace["irq_to_softirq"]["p50"] / 2e3,
                         trace["irq_to_softirq"]["p99"] / 2e3))
    w("")

    # --------------------------------------------------------- Table 5
    w("## Table 5 — rank correlation")
    w("")
    w("| corner | paper rho(LLC)/rho(clears) | measured |")
    w("|---|---|---|")
    paper_t5 = {
        ("tx", 65536): (0.62, 0.80),
        ("tx", 128): (0.93, 0.89),
        ("rx", 65536): (0.82, 0.93),
        ("rx", 128): (0.96, 0.79),
    }
    for (direction, size), (p_llc, p_clr) in paper_t5.items():
        corr = correlate(corners[(direction, size, "none")],
                         corners[(direction, size, "full")])
        w("| %s %s | %.2f / %.2f | %.2f / %.2f |"
          % (direction.upper(), size, p_llc, p_clr,
             corr.rho_llc, corr.rho_clears))
    w("")
    w("LLC correlations are strong and positive everywhere, clearing the")
    w("paper's printed significance bar (0.377) in all corners and the")
    w("exact one-tailed p=0.05 bar (0.714) in most.  Clear correlations")
    w("are positive but weaker than the paper's (see deviations).")
    w("")

    # ----------------------------------------------------- deviations
    w("## Known deviations")
    w("")
    w("* **irq vs full ordering at some sizes.**  The paper has full")
    w("  affinity slightly ahead of interrupt-only affinity (29% vs 25%);")
    w("  in the simulator the two modes are within ~2% of each other and")
    w("  occasionally swap, because the modelled wake-steering achieves")
    w("  essentially perfect alignment in irq mode.")
    w("* **Machine-clear contrast at small sizes.**  The paper's RX 128B")
    w("  no-affinity run shows a very large clear count that collapses")
    w("  under affinity (67% -> 21% of time by the indicator method).")
    w("  Our receive-side readers settle into a flow-controlled steady")
    w("  state with few block/wake cycles, so the no-affinity IPI storm")
    w("  is weaker and the contrast smaller.  The TX-side contrast and")
    w("  the per-CPU attribution asymmetries do reproduce.")
    w("* **Lock-bin branch collapse** is directionally right but milder")
    w("  (full affinity keeps ~20-30% of no-affinity lock branches vs")
    w("  the paper's 5-10%): the")
    w("  modelled socket-lock hold times are shorter than the real 2.4")
    w("  kernel's worst case, so there is less spinning to remove.")
    w("* The Spearman critical value the paper prints (0.377) does not")
    w("  match standard one-tailed tables for n=7 (0.714); both are")
    w("  reported.")
    w("")

    # ----------------------------------------------------- extensions
    w("## Extensions beyond the paper")
    w("")
    w("Each extension is grounded in a sentence of the paper (see the")
    w("extension table in DESIGN.md); artefacts land in `results/`.")
    w("")
    w("* **4P system** (mentioned in section 5, not shown): the affinity")
    w("  gain grows because default routing bottlenecks CPU0 harder --")
    w("  `results/ablation_4p.txt`.")
    w("* **Linux-2.6 IRQ rotation** (`rotate` mode, section 7): lands")
    w("  between no affinity and static IRQ affinity, exactly the")
    w("  trade-off the paper describes -- ")
    w("  `results/ablation_dynamic_placement.txt`.")
    w("* **RSS flow steering** (`rss` mode, section 8): reaches static")
    w("  alignment with no pinning -- same artefact.")
    w("* **iSCSI-style target** (section 8's future work): full affinity")
    w("  improves IOPS by >15% -- `results/extension_iscsi.txt`.")
    w("* **Web-style connection churn** (section 4's partitioning")
    w("  argument): the affinity gain shrinks as application processing")
    w("  dilutes the fast-path share -- `results/extension_web.txt`.")
    w("* **HyperThreading** (`Machine(hyperthreading=True)`): SMT gives")
    w("  a sublinear (~20%) boost, and a sibling placement (IRQ on one")
    w("  logical CPU, process on the other) captures most of the")
    w("  affinity benefit via the shared cache --")
    w("  `examples/hyperthreading.py`.")
    w("* **Loss recovery** (fault injection): duplicate-ACK fast")
    w("  retransmit and RTO recovery under injected frame loss --")
    w("  `tests/test_loss_recovery.py`.")
    w("")

    text = "\n".join(lines) + "\n"
    with open(out_path, "w") as fh:
        fh.write(text)
    print("wrote %s (%d lines)" % (out_path, len(lines)), file=sys.stderr)


if __name__ == "__main__":
    main(*sys.argv[1:])
