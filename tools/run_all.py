"""One-command full regeneration of every artefact.

    python tools/run_all.py [--fresh] [--jobs N]

Runs, in order: the unit/integration test suite, the benchmark suite
(regenerating the paper's tables and figures into ``results/``), and
the EXPERIMENTS.md report.  ``--fresh`` clears the result caches first
so everything is recomputed from scratch (expect tens of minutes).
``--jobs N`` fans the experiment sweeps out over N worker processes
(exported as ``REPRO_JOBS`` so the benchmark fixtures pick it up; the
default is one worker per CPU).
"""

import os
import shutil
import subprocess
import sys


def run(cmd):
    print("+ %s" % " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def main(argv):
    argv = list(argv)
    if "--jobs" in argv:
        i = argv.index("--jobs")
        try:
            jobs = int(argv[i + 1])
        except (IndexError, ValueError):
            print("--jobs requires an integer", file=sys.stderr)
            return 2
        del argv[i:i + 2]
        os.environ["REPRO_JOBS"] = str(max(1, jobs))
        print("sweeps will use %d worker process(es)" % max(1, jobs))

    if "--fresh" in argv:
        for path in (".repro-results", "results"):
            shutil.rmtree(path, ignore_errors=True)
        print("cleared caches and artefacts")

    failures = 0
    failures += run([sys.executable, "-m", "pytest", "tests/", "-q"])
    failures += run([
        sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
        "-q",
    ])
    failures += run([sys.executable, "tools/make_experiments_report.py"])
    if failures:
        print("\nFAILURES above", file=sys.stderr)
        return 1
    print("\nall artefacts regenerated; see results/ and EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
