"""One-command full regeneration of every artefact.

    python tools/run_all.py [--fresh]

Runs, in order: the unit/integration test suite, the benchmark suite
(regenerating the paper's tables and figures into ``results/``), and
the EXPERIMENTS.md report.  ``--fresh`` clears the result caches first
so everything is recomputed from scratch (expect tens of minutes).
"""

import shutil
import subprocess
import sys


def run(cmd):
    print("+ %s" % " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def main(argv):
    if "--fresh" in argv:
        for path in (".repro-results", "results"):
            shutil.rmtree(path, ignore_errors=True)
        print("cleared caches and artefacts")

    failures = 0
    failures += run([sys.executable, "-m", "pytest", "tests/", "-q"])
    failures += run([
        sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
        "-q",
    ])
    failures += run([sys.executable, "tools/make_experiments_report.py"])
    if failures:
        print("\nFAILURES above", file=sys.stderr)
        return 1
    print("\nall artefacts regenerated; see results/ and EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
